package trace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func appendEvents(t *testing.T, dir string, n int) {
	t.Helper()
	a, err := OpenAudit(dir)
	if err != nil {
		t.Fatalf("OpenAudit: %v", err)
	}
	defer a.Close()
	for i := 0; i < n; i++ {
		if err := a.Append("accepted", "job-1", map[string]string{"fp": "abc"}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

func TestAuditChainVerifies(t *testing.T) {
	dir := t.TempDir()
	appendEvents(t, dir, 5)
	rep, err := VerifyAudit(dir)
	if err != nil {
		t.Fatalf("VerifyAudit: %v", err)
	}
	if rep.Records != 5 || rep.TailSeq != 5 || rep.Truncated {
		t.Fatalf("report = %+v", rep)
	}
	// Reopen resumes the chain rather than restarting it.
	appendEvents(t, dir, 3)
	rep, err = VerifyAudit(dir)
	if err != nil {
		t.Fatalf("VerifyAudit after reopen: %v", err)
	}
	if rep.Records != 8 || rep.TailSeq != 8 {
		t.Fatalf("resumed report = %+v", rep)
	}
}

func TestAuditEmptyAndMissing(t *testing.T) {
	dir := t.TempDir()
	rep, err := VerifyAudit(dir)
	if err != nil || rep.Records != 0 || rep.Truncated {
		t.Fatalf("missing file: rep=%+v err=%v", rep, err)
	}
	a, err := OpenAudit(dir)
	if err != nil {
		t.Fatalf("OpenAudit: %v", err)
	}
	a.Close()
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := a.Append("x", "", nil); err == nil {
		t.Fatalf("append after close succeeded")
	}
	var nilLog *AuditLog
	if err := nilLog.Append("x", "", nil); err != nil {
		t.Fatalf("nil log append: %v", err)
	}
	if err := nilLog.Close(); err != nil {
		t.Fatalf("nil log close: %v", err)
	}
}

func TestAuditBitFlipDetected(t *testing.T) {
	dir := t.TempDir()
	appendEvents(t, dir, 6)
	path := filepath.Join(dir, auditFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// Flip one bit inside the third record's event name.
	lines := bytes.SplitAfter(raw, []byte("\n"))
	idx := bytes.Index(lines[2], []byte("accepted"))
	if idx < 0 {
		t.Fatalf("fixture drift: no event name in %q", lines[2])
	}
	lines[2][idx] ^= 0x01
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatalf("write tampered file: %v", err)
	}

	_, err = VerifyAudit(dir)
	if !errors.Is(err, ErrAuditTampered) {
		t.Fatalf("bit flip not detected: %v", err)
	}
	if !strings.Contains(err.Error(), "line 4") {
		// The flipped record (line 3) still parses; the chain breaks at the
		// *next* record, whose prev no longer matches.
		t.Fatalf("error does not localize the break: %v", err)
	}

	// Open quarantines the evidence and starts a fresh, verifiable chain.
	a, err := OpenAudit(dir)
	if err != nil {
		t.Fatalf("OpenAudit on tampered dir: %v", err)
	}
	if err := a.Append("accepted", "job-2", nil); err != nil {
		t.Fatalf("append on fresh chain: %v", err)
	}
	a.Close()
	rep, err := VerifyAudit(dir)
	if err != nil || rep.Records != 1 || rep.TailSeq != 1 {
		t.Fatalf("fresh chain: rep=%+v err=%v", rep, err)
	}
	quarantined, _ := filepath.Glob(path + ".corrupt-*")
	if len(quarantined) != 1 {
		t.Fatalf("tampered file not quarantined: %v", quarantined)
	}
}

func TestAuditDeletedRecordDetected(t *testing.T) {
	dir := t.TempDir()
	appendEvents(t, dir, 5)
	path := filepath.Join(dir, auditFile)
	raw, _ := os.ReadFile(path)
	lines := bytes.SplitAfter(raw, []byte("\n"))
	// Drop record 2 entirely: seq and prev both break at the splice.
	tampered := bytes.Join(append(lines[:1], lines[2:]...), nil)
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := VerifyAudit(dir); !errors.Is(err, ErrAuditTampered) {
		t.Fatalf("deleted record not detected: %v", err)
	}
}

func TestAuditTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	appendEvents(t, dir, 4)
	path := filepath.Join(dir, auditFile)
	// Simulate kill -9 mid-append: a partial record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.WriteString(`{"seq":5,"ts_unix_nano":123,"event":"sta`); err != nil {
		t.Fatalf("tear: %v", err)
	}
	f.Close()

	rep, err := VerifyAudit(dir)
	if err != nil {
		t.Fatalf("torn tail failed verification: %v", err)
	}
	if rep.Records != 4 || !rep.Truncated {
		t.Fatalf("report = %+v", rep)
	}

	// Open truncates the torn tail and the chain continues cleanly.
	a, err := OpenAudit(dir)
	if err != nil {
		t.Fatalf("OpenAudit: %v", err)
	}
	if err := a.Append("started", "job-9", nil); err != nil {
		t.Fatalf("append: %v", err)
	}
	a.Close()
	rep, err = VerifyAudit(dir)
	if err != nil || rep.Records != 5 || rep.Truncated {
		t.Fatalf("after repair: rep=%+v err=%v", rep, err)
	}
}
