package trace

import (
	"context"
	"sync"
	"time"
)

// Collector retains completed traces in a bounded in-memory ring and fans
// them out to live stream subscribers.
//
// Sampling policy: a trace whose root span ran at least SlowThreshold is
// always kept — slow requests are the ones worth debugging — while faster
// traces are kept one-in-SampleN (deterministically, by completion order).
// SampleN <= 1 keeps everything; retention is still bounded by the ring, so
// keep-all is safe at any request rate, it just recycles ids faster.
type Collector struct {
	mu      sync.Mutex
	byID    map[string]*Trace
	order   []string // FIFO of kept trace ids, for ring eviction
	cap     int
	slow    time.Duration
	sampleN int
	closed  bool

	seq        uint64 // completed traces, for the 1-in-N counter
	kept       uint64
	sampledOut uint64
	evicted    uint64
	subDropped uint64

	nextSub int
	subs    map[int]chan *TraceJSON
}

// CollectorStats is the wire form of collector health for /v1/stats.
type CollectorStats struct {
	Ring        int    `json:"ring"`
	RingCap     int    `json:"ring_cap"`
	Finished    uint64 `json:"finished"`
	Kept        uint64 `json:"kept"`
	SampledOut  uint64 `json:"sampled_out"`
	Evicted     uint64 `json:"evicted"`
	Subscribers int    `json:"subscribers"`
	SubDropped  uint64 `json:"stream_dropped"`
}

// NewCollector builds a collector retaining up to ringCap traces. ringCap
// <= 0 means tracing is off: Start returns nils and nothing is retained.
// slow is the always-keep latency threshold (0 disables the fast-path
// sampling exemption); sampleN keeps one in N sub-threshold traces (<= 1
// keeps all).
func NewCollector(ringCap int, slow time.Duration, sampleN int) *Collector {
	if ringCap <= 0 {
		return nil
	}
	return &Collector{
		byID:    make(map[string]*Trace, ringCap),
		cap:     ringCap,
		slow:    slow,
		sampleN: sampleN,
		subs:    make(map[int]chan *TraceJSON),
	}
}

// Start opens a new trace with a root span of the given name and returns a
// context carrying it. On a nil collector it returns ctx unchanged and nil
// trace/span — callers thread the nils through StartSpan/End for free.
func (c *Collector) Start(ctx context.Context, name string) (context.Context, *Trace, *Span) {
	if c == nil {
		return ctx, nil, nil
	}
	tr, root := NewTrace(name)
	return ContextWith(ctx, tr, root), tr, root
}

// Finish closes the trace's root span and applies the retention policy:
// keep-if-slow, else 1-in-SampleN. Kept traces enter the ring (evicting the
// oldest) and are broadcast to stream subscribers; a subscriber whose
// buffer is full misses that trace rather than stalling the server.
// Nil-safe in both arguments.
func (c *Collector) Finish(tr *Trace, root *Span) {
	if c == nil || tr == nil {
		return
	}
	root.End()
	snap := tr.Snapshot()

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.seq++
	slowEnough := c.slow > 0 && snap.DurationMS >= float64(c.slow)/1e6
	sampled := c.sampleN <= 1 || c.seq%uint64(c.sampleN) == 0
	if !slowEnough && !sampled {
		c.sampledOut++
		c.mu.Unlock()
		return
	}
	c.kept++
	if _, dup := c.byID[tr.id]; !dup {
		c.byID[tr.id] = tr
		c.order = append(c.order, tr.id)
		for len(c.order) > c.cap {
			old := c.order[0]
			c.order = c.order[1:]
			delete(c.byID, old)
			c.evicted++
		}
	}
	for _, ch := range c.subs {
		select {
		case ch <- snap:
		default:
			c.subDropped++
		}
	}
	c.mu.Unlock()
}

// Get returns the retained trace with the given id, serialized, or false.
func (c *Collector) Get(id string) (*TraceJSON, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	tr := c.byID[id]
	c.mu.Unlock()
	if tr == nil {
		return nil, false
	}
	return tr.Snapshot(), true
}

// Subscribe registers a live-stream consumer and returns its id and
// channel. The channel is buffered with buf slots; sends never block (see
// Finish). The channel is closed by Unsubscribe or Close.
func (c *Collector) Subscribe(buf int) (int, <-chan *TraceJSON) {
	if c == nil {
		ch := make(chan *TraceJSON)
		close(ch)
		return 0, ch
	}
	if buf < 1 {
		buf = 1
	}
	ch := make(chan *TraceJSON, buf)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		close(ch)
		return 0, ch
	}
	c.nextSub++
	id := c.nextSub
	c.subs[id] = ch
	c.mu.Unlock()
	return id, ch
}

// Unsubscribe removes a subscriber and closes its channel. Idempotent.
func (c *Collector) Unsubscribe(id int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	ch, ok := c.subs[id]
	if ok {
		delete(c.subs, id)
	}
	c.mu.Unlock()
	if ok {
		close(ch)
	}
}

// Close stops the collector: subscriber channels are closed (ending any
// /v1/trace/stream handlers) and later Finish calls are dropped. Retained
// traces stay readable via Get.
func (c *Collector) Close() {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	subs := c.subs
	c.subs = make(map[int]chan *TraceJSON)
	c.mu.Unlock()
	for _, ch := range subs {
		close(ch)
	}
}

// Stats snapshots collector health counters.
func (c *Collector) Stats() CollectorStats {
	if c == nil {
		return CollectorStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CollectorStats{
		Ring:        len(c.order),
		RingCap:     c.cap,
		Finished:    c.seq,
		Kept:        c.kept,
		SampledOut:  c.sampledOut,
		Evicted:     c.evicted,
		Subscribers: len(c.subs),
		SubDropped:  c.subDropped,
	}
}
