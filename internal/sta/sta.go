// Package sta is the static timing analysis substrate for the Table 2
// full-flow experiments: arrival-time and required-time propagation over a
// placed circuit whose nets may carry buffered routing trees. Wire timing
// comes from tree.PathDelays (Elmore + slew propagation); unrouted nets fall
// back to a dedicated-wire (star) estimate, which is what the flows use to
// derive per-sink required times before routing.
package sta

import (
	"fmt"
	"math"

	"merlin/internal/circuit"
	"merlin/internal/geom"
	"merlin/internal/place"
	"merlin/internal/rc"
	"merlin/internal/tree"
)

// POLoad is the pin capacitance (pF) assumed for primary outputs.
const POLoad = 0.030

// Timer runs timing over one placed circuit.
type Timer struct {
	C    *circuit.Circuit
	P    *place.Placement
	Tech rc.Technology
	// Trees[g] is the buffered routing tree of the net driven by gate g
	// (nil = star estimate). Tree sink order must match SinkPins(g).
	Trees []*tree.Tree
}

// New prepares a timer with no routed nets.
func New(c *circuit.Circuit, p *place.Placement, tech rc.Technology) *Timer {
	return &Timer{C: c, P: p, Tech: tech, Trees: make([]*tree.Tree, len(c.Gates))}
}

// Pin identifies one sink pin of a net: a consumer gate and its input index,
// or a primary output (Gate < 0 means the PO pseudo-pin).
type Pin struct {
	Gate int // consuming gate ID; -1 for the PO pin
	In   int // input pin index on the consumer
}

// SinkPins returns the ordered sink pins of the net driven by gate g: every
// (consumer, pin) pair plus the PO pseudo-pin if g is a primary output. The
// order is canonical — routing trees for this net must index sinks the same
// way.
func (t *Timer) SinkPins(g int) []Pin {
	var pins []Pin
	seen := map[int]bool{}
	for _, c := range t.C.Fanouts[g] {
		if seen[c] {
			continue // Fanouts lists a consumer once per driven input
		}
		seen[c] = true
		for in, f := range t.C.Gates[c].Fanins {
			if f == g {
				pins = append(pins, Pin{Gate: c, In: in})
			}
		}
	}
	if t.C.Gates[g].IsPO {
		pins = append(pins, Pin{Gate: -1})
	}
	return pins
}

// PinLoad returns the capacitance of a sink pin.
func (t *Timer) PinLoad(p Pin) float64 {
	if p.Gate < 0 {
		return POLoad
	}
	return t.C.Gates[p.Gate].Cell.Timing.Cin
}

// PinPos returns the placed position of a sink pin.
func (t *Timer) PinPos(p Pin, src int) geom.Point {
	if p.Gate < 0 {
		return t.P.Pos[src] // PO pad co-located with its driver
	}
	return t.P.Pos[p.Gate]
}

// Report is a timing run's result.
type Report struct {
	// AT and Slew are the arrival time and transition at each gate output.
	AT, Slew []float64
	// RAT is the required arrival time at each gate output for the target.
	RAT []float64
	// Delay is the maximum PO arrival time (the circuit delay).
	Delay float64
	// Target is the RAT anchor used at POs.
	Target float64
	// CritPO is the primary output realizing Delay.
	CritPO int
}

// Slack returns RAT − AT at gate g's output.
func (r *Report) Slack(g int) float64 { return r.RAT[g] - r.AT[g] }

// netTiming captures one net's timing: driver load and per-pin delay/slew.
type netTiming struct {
	load float64
	per  []tree.PathTiming
}

// timeNet times the net driven by g for a given driver output slew.
func (t *Timer) timeNet(g int, rootSlew float64) netTiming {
	pins := t.SinkPins(g)
	if tr := t.Trees[g]; tr != nil {
		load, per := tr.PathDelays(t.Tech, rootSlew)
		return netTiming{load: load, per: per}
	}
	// Star estimate: a dedicated wire from driver to each pin.
	nt := netTiming{per: make([]tree.PathTiming, len(pins))}
	src := t.P.Pos[g]
	for i, p := range pins {
		wl := geom.Dist(src, t.PinPos(p, g))
		cl := t.PinLoad(p)
		el := t.Tech.WireElmore(wl, cl)
		nt.per[i] = tree.PathTiming{Delay: el, Slew: t.Tech.WireSlewOut(rootSlew, el)}
		nt.load += t.Tech.WireC(wl) + cl
	}
	return nt
}

// DriverOf returns the timing model driving net g: the gate's cell, or a
// default PI pad driver.
func (t *Timer) DriverOf(g int) rc.Gate {
	if gate := t.C.Gates[g]; gate.Cell != nil {
		return gate.Cell.Timing
	}
	// PI driver: a medium inverter-like pad model.
	return rc.Gate{Name: "PI_DRV", K0: 0.05, K1: 0.8, K2: 0.1, K3: 0.01, S0: 0.05, S1: 1.5, Cin: 0.01, Area: 1}
}

// Run propagates arrivals forward and required times backward. target <= 0
// anchors RAT at the computed circuit delay (zero worst slack).
func (t *Timer) Run(target float64) (*Report, error) {
	n := len(t.C.Gates)
	r := &Report{
		AT:   make([]float64, n),
		Slew: make([]float64, n),
		RAT:  make([]float64, n),
	}
	// pinAT[g][in] caches arrival and slew at consumer input pins.
	type pinT struct{ at, slew float64 }
	pinAT := make([]map[int]pinT, n) // gate -> input index -> timing
	for i := range pinAT {
		pinAT[i] = map[int]pinT{}
	}
	poAT := map[int]float64{}

	// Forward pass in topological order (gate IDs are topological).
	for g := 0; g < n; g++ {
		gate := t.C.Gates[g]
		if gate.Cell == nil { // PI
			r.AT[g] = 0
			r.Slew[g] = t.DriverOf(g).SlewOut(t.timeNet(g, 0).load)
		} else {
			at, slew := math.Inf(-1), t.Tech.NominalSlew
			nt := t.timeNet(g, 0) // load does not depend on slew
			for in := range gate.Fanins {
				pt, ok := pinAT[g][in]
				if !ok {
					return nil, fmt.Errorf("sta: gate %d input %d never driven", g, in)
				}
				d := gate.Cell.Timing.Delay(nt.load, pt.slew)
				if pt.at+d > at {
					at = pt.at + d
				}
				_ = slew
			}
			r.AT[g] = at
			r.Slew[g] = gate.Cell.Timing.SlewOut(t.timeNet(g, 0).load)
		}
		// Push across g's net to consumer pins.
		nt := t.timeNet(g, r.Slew[g])
		pins := t.SinkPins(g)
		for i, p := range pins {
			if p.Gate < 0 {
				poAT[g] = r.AT[g] + nt.per[i].Delay
				continue
			}
			pinAT[p.Gate][p.In] = pinT{at: r.AT[g] + nt.per[i].Delay, slew: nt.per[i].Slew}
		}
	}

	// Circuit delay = max PO arrival.
	r.Delay = math.Inf(-1)
	for g, at := range poAT {
		if at > r.Delay {
			r.Delay = at
			r.CritPO = g
		}
	}
	if math.IsInf(r.Delay, -1) {
		return nil, fmt.Errorf("sta: no primary outputs reached")
	}
	r.Target = target
	if target <= 0 {
		r.Target = r.Delay
	}

	// Backward pass: RAT at gate outputs.
	for g := 0; g < n; g++ {
		r.RAT[g] = math.Inf(1)
	}
	for g := n - 1; g >= 0; g-- {
		nt := t.timeNet(g, r.Slew[g])
		pins := t.SinkPins(g)
		for i, p := range pins {
			if p.Gate < 0 {
				if v := r.Target - nt.per[i].Delay; v < r.RAT[g] {
					r.RAT[g] = v
				}
				continue
			}
			consumer := t.C.Gates[p.Gate]
			load := t.timeNet(p.Gate, 0).load
			d := consumer.Cell.Timing.Delay(load, nt.per[i].Slew)
			if v := r.RAT[p.Gate] - d - nt.per[i].Delay; v < r.RAT[g] {
				r.RAT[g] = v
			}
		}
		if math.IsInf(r.RAT[g], 1) {
			// Dangling net (no sinks): unconstrained.
			r.RAT[g] = r.Target
		}
	}
	return r, nil
}

// PinRAT returns the required time at a specific sink pin of net g, derived
// from a report: the consumer's output RAT minus its gate delay (or the
// target for PO pins). The flows use this to build per-net routing problems.
func (t *Timer) PinRAT(rep *Report, g int, p Pin) float64 {
	if p.Gate < 0 {
		return rep.Target
	}
	consumer := t.C.Gates[p.Gate]
	load := t.timeNet(p.Gate, 0).load
	d := consumer.Cell.Timing.Delay(load, t.Tech.NominalSlew)
	return rep.RAT[p.Gate] - d
}
