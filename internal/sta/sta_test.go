package sta

import (
	"math"
	"testing"

	"merlin/internal/circuit"
	"merlin/internal/geom"
	"merlin/internal/place"
	"merlin/internal/rc"
	"merlin/internal/tree"

	mnet "merlin/internal/net"
)

func testTech() rc.Technology {
	t := rc.Default035()
	t.LoadQuantum = 0
	return t
}

// chainCircuit builds PI -> INV -> INV(PO) by hand.
func chainCircuit(t *testing.T) (*circuit.Circuit, *place.Placement) {
	t.Helper()
	cells := circuit.CellSet()
	inv := &cells[circuit.CellInv]
	c := &circuit.Circuit{
		Name:   "chain",
		NumPIs: 1,
		Gates: []*circuit.Gate{
			{ID: 0},
			{ID: 1, Cell: inv, Fanins: []int{0}},
			{ID: 2, Cell: inv, Fanins: []int{1}, IsPO: true},
		},
	}
	c.Fanouts = [][]int{{1}, {2}, {}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	pl := &place.Placement{
		Circuit: c,
		Pos:     []geom.Point{{X: 0, Y: 0}, {X: 1000, Y: 0}, {X: 2000, Y: 0}},
		Die:     geom.Rect{Max: geom.Point{X: 2000, Y: 0}},
	}
	return c, pl
}

// TestChainHandComputed verifies arrival propagation against manual Elmore +
// 4-parameter arithmetic on a two-inverter chain.
func TestChainHandComputed(t *testing.T) {
	tech := testTech()
	c, pl := chainCircuit(t)
	timer := New(c, pl, tech)
	rep, err := timer.Run(0)
	if err != nil {
		t.Fatal(err)
	}

	inv := c.Gates[1].Cell.Timing
	pi := timer.DriverOf(0)

	// Net 0: PI at (0,0) to gate 1 pin: wire 1000λ + pin cap.
	load0 := tech.WireC(1000) + inv.Cin
	slew0 := pi.SlewOut(load0)
	el0 := tech.WireElmore(1000, inv.Cin)
	at1in := el0 // PI AT = 0
	slew1in := tech.WireSlewOut(slew0, el0)

	// Gate 1 drives net 1: wire 1000λ + gate 2 pin.
	load1 := tech.WireC(1000) + inv.Cin
	at1 := at1in + inv.Delay(load1, slew1in)
	if math.Abs(rep.AT[1]-at1) > 1e-9 {
		t.Fatalf("AT[1] = %.9f, want %.9f", rep.AT[1], at1)
	}

	el1 := tech.WireElmore(1000, inv.Cin)
	slew1 := inv.SlewOut(load1)
	at2in := at1 + el1
	slew2in := tech.WireSlewOut(slew1, el1)
	// Gate 2 drives only its PO pin (co-located, zero wire).
	load2 := POLoad
	at2 := at2in + inv.Delay(load2, slew2in)
	if math.Abs(rep.AT[2]-at2) > 1e-9 {
		t.Fatalf("AT[2] = %.9f, want %.9f", rep.AT[2], at2)
	}
	if math.Abs(rep.Delay-at2) > 1e-9 {
		t.Fatalf("Delay = %.9f, want %.9f", rep.Delay, at2)
	}
	// RAT anchored at the delay ⇒ the critical path has zero slack.
	if math.Abs(rep.Slack(2)) > 1e-9 {
		t.Fatalf("PO slack = %.9f, want 0", rep.Slack(2))
	}
	if rep.Slack(1) < -1e-9 || rep.Slack(0+1) > 1e-6 {
		t.Fatalf("chain gate slack = %.9f, want ~0", rep.Slack(1))
	}
}

// TestRATConsistency: slack must be non-negative everywhere when RATs anchor
// at the computed delay, and PinRAT must never exceed the consumer's RAT.
func TestRATConsistency(t *testing.T) {
	tech := testTech()
	c, err := circuit.Generate(circuit.Profile{Name: "r", NumPIs: 6, NumGate: 60, NumPOs: 4, Locality: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(c, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	timer := New(c, pl, tech)
	rep, err := timer.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	worst := math.Inf(1)
	for g := range c.Gates {
		if s := rep.Slack(g); s < worst {
			worst = s
		}
	}
	if worst < -1e-9 {
		t.Fatalf("negative slack %.9f with RAT anchored at the delay", worst)
	}
	if math.Abs(worst) > 1e-6 {
		t.Fatalf("critical path slack should be ~0, got %.9f", worst)
	}
}

// TestRoutedTreeChangesTiming: attaching an explicit routing tree must be
// honored by the timer (match a hand-computed detour delay).
func TestRoutedTreeChangesTiming(t *testing.T) {
	tech := testTech()
	c, pl := chainCircuit(t)
	timer := New(c, pl, tech)
	base, err := timer.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	// Route net 1 (gate1 → gate2) with a huge detour.
	pins := timer.SinkPins(1)
	if len(pins) != 1 {
		t.Fatalf("net 1 pins = %d", len(pins))
	}
	nt := &mnet.Net{
		Name:   "n1",
		Source: pl.Pos[1],
		Sinks:  []mnet.Sink{{Pos: pl.Pos[2], Load: timer.PinLoad(pins[0]), Req: 100}},
	}
	tr := tree.New(nt)
	way := tr.Root.AddChild(&tree.Node{Kind: tree.KindSteiner, Pos: geom.Point{X: 1000, Y: 50000}})
	way.AddChild(&tree.Node{Kind: tree.KindSink, Pos: pl.Pos[2], SinkIdx: 0})
	timer.Trees[1] = tr
	detoured, err := timer.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if detoured.Delay <= base.Delay {
		t.Fatalf("100kλ detour did not slow the circuit: %.4f vs %.4f", detoured.Delay, base.Delay)
	}
}

func TestSinkPinsAndLoads(t *testing.T) {
	c, pl := chainCircuit(t)
	timer := New(c, pl, testTech())
	pins2 := timer.SinkPins(2)
	if len(pins2) != 1 || pins2[0].Gate != -1 {
		t.Fatalf("PO net pins = %+v", pins2)
	}
	if timer.PinLoad(pins2[0]) != POLoad {
		t.Fatal("PO pin load wrong")
	}
	if timer.PinPos(pins2[0], 2) != pl.Pos[2] {
		t.Fatal("PO pin must sit at its driver")
	}
	pins0 := timer.SinkPins(0)
	if len(pins0) != 1 || pins0[0].Gate != 1 || pins0[0].In != 0 {
		t.Fatalf("net 0 pins = %+v", pins0)
	}
}

// TestMultiPinConsumer: a gate consuming the same net on two inputs yields
// two sink pins.
func TestMultiPinConsumer(t *testing.T) {
	cells := circuit.CellSet()
	nand := &cells[circuit.CellNand2]
	c := &circuit.Circuit{
		Name:   "mp",
		NumPIs: 1,
		Gates: []*circuit.Gate{
			{ID: 0},
			{ID: 1, Cell: nand, Fanins: []int{0, 0}, IsPO: true},
		},
	}
	c.Fanouts = [][]int{{1, 1}, {}}
	pl := &place.Placement{Circuit: c, Pos: []geom.Point{{X: 0, Y: 0}, {X: 1000, Y: 0}}}
	timer := New(c, pl, testTech())
	pins := timer.SinkPins(0)
	if len(pins) != 2 {
		t.Fatalf("want 2 pins for a double-connected net, got %d", len(pins))
	}
	if _, err := timer.Run(0); err != nil {
		t.Fatal(err)
	}
}

// TestPinRATNeverExceedsTarget: every sink pin's required time is bounded by
// the timing target, and matches RAT-minus-gate-delay for gate pins.
func TestPinRATNeverExceedsTarget(t *testing.T) {
	tech := testTech()
	c, err := circuit.Generate(circuit.Profile{Name: "p", NumPIs: 5, NumGate: 40, NumPOs: 3, Locality: 0.5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(c, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	timer := New(c, pl, tech)
	rep, err := timer.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	for g := range c.Gates {
		for _, pin := range timer.SinkPins(g) {
			rat := timer.PinRAT(rep, g, pin)
			if rat > rep.Target+1e-9 {
				t.Fatalf("net %d pin %+v: RAT %.4f beyond target %.4f", g, pin, rat, rep.Target)
			}
		}
	}
}
