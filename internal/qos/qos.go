// Package qos provides per-tenant quality-of-service admission for the
// router tier (and anything else fronting merlind): token-bucket rate
// limits, concurrency quotas, and priority classes, all keyed by a tenant
// name. Everything is stdlib-only and dependency-free.
//
// The design goal is fleet isolation: one hot tenant must degrade *itself*
// — first into degraded-tier answers, then into structured 429s — while
// every other tenant keeps its full budget. A Controller therefore keeps an
// independent bucket pair and concurrency gauge per tenant; nothing is
// shared across tenants except the table itself (bounded, idle-evicted).
//
// Admission is a three-step ladder, evaluated per request:
//
//  1. Concurrency: a tenant at its in-flight quota is refused outright
//     (DenyConcurrency → 429). Concurrency is the one resource that cannot
//     be borrowed against the future, so there is no degraded form.
//  2. Rate, primary bucket: a token admits the request at full service
//     (Admit).
//  3. Rate, overdraft bucket: a separate bucket refilled at the same rate
//     admits the request *degraded* (AdmitDegraded) — the caller forwards
//     it with the degradation ladder enabled, so the tenant gets a cheaper
//     tier instead of an error. When both buckets are dry the request is
//     refused (DenyRate → 429) with a truthful retry-after.
//
// Priority classes scale a tenant's budgets: gold gets 4× the configured
// rate and 2× the concurrency, bronze a quarter of each. Class membership
// is static configuration (Config.Tenants); unknown tenants get the
// standard class.
package qos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Decision is the outcome of one Admit call.
type Decision int

const (
	// Admit serves the request at full service.
	Admit Decision = iota
	// AdmitDegraded serves the request with the degradation ladder enabled:
	// the tenant is over its primary rate but inside the overdraft budget,
	// so it gets a (possibly) cheaper tier instead of a 429.
	AdmitDegraded
	// DenyRate refuses the request: both buckets are dry (429, with a
	// retry-after derived from the refill rate).
	DenyRate
	// DenyConcurrency refuses the request: the tenant is at its in-flight
	// quota (429; retrying after any of its requests finishes will succeed).
	DenyConcurrency
)

// String names the decision for stats and trace attributes.
func (d Decision) String() string {
	switch d {
	case Admit:
		return "admit"
	case AdmitDegraded:
		return "admit_degraded"
	case DenyRate:
		return "deny_rate"
	case DenyConcurrency:
		return "deny_concurrency"
	}
	return fmt.Sprintf("decision(%d)", int(d))
}

// Admitted reports whether the decision lets the request through.
func (d Decision) Admitted() bool { return d == Admit || d == AdmitDegraded }

// Class scales a tenant's budgets relative to the configured base.
type Class struct {
	Name string
	// RateMult scales the refill rate and burst of both buckets.
	RateMult float64
	// ConcMult scales the concurrency quota (result rounded up, min 1).
	ConcMult float64
}

// The built-in priority classes. Gold is for latency-sensitive tenants,
// bronze for batch/background traffic that should yield first.
var (
	ClassGold     = Class{Name: "gold", RateMult: 4, ConcMult: 2}
	ClassStandard = Class{Name: "standard", RateMult: 1, ConcMult: 1}
	ClassBronze   = Class{Name: "bronze", RateMult: 0.25, ConcMult: 0.5}
)

// ParseClass resolves a class name ("gold", "standard", "bronze").
func ParseClass(name string) (Class, error) {
	switch strings.ToLower(name) {
	case "gold":
		return ClassGold, nil
	case "", "standard":
		return ClassStandard, nil
	case "bronze":
		return ClassBronze, nil
	}
	return Class{}, fmt.Errorf("qos: unknown class %q (want gold, standard or bronze)", name)
}

// Config sizes a Controller. Zero values take the documented defaults.
type Config struct {
	// Rate is the standard-class refill rate in requests/second; default 50.
	// Negative disables rate limiting entirely (every Admit that clears the
	// concurrency gate returns Admit).
	Rate float64
	// Burst is the bucket depth in requests; default 2×Rate (min 1). A full
	// bucket absorbs a burst of this size before the rate gates.
	Burst float64
	// MaxConcurrent is the standard-class in-flight quota; default 32.
	// Negative disables the concurrency gate.
	MaxConcurrent int
	// MaxTenants bounds the tenant table; default 1024. When full, the
	// longest-idle tenant is evicted (it re-enters later with fresh, full
	// buckets — a brief over-admit beats unbounded memory for a cardinality
	// attack via the tenant header).
	MaxTenants int
	// Tenants maps tenant name → class name ("gold", "standard", "bronze").
	// Unlisted tenants are standard.
	Tenants map[string]string

	// now substitutes the clock in tests.
	now func() time.Time
}

func (c Config) withDefaults() (Config, error) {
	if c.Rate == 0 {
		c.Rate = 50
	}
	if c.Burst == 0 {
		c.Burst = 2 * c.Rate
	}
	if c.Burst < 1 {
		c.Burst = 1
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 32
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 1024
	}
	if c.now == nil {
		c.now = time.Now
	}
	for tenant, class := range c.Tenants {
		if _, err := ParseClass(class); err != nil {
			return Config{}, fmt.Errorf("qos: tenant %q: %w", tenant, err)
		}
	}
	return c, nil
}

// bucket is one token bucket. Tokens refill continuously at rate/sec up to
// burst; take consumes one when available.
type bucket struct {
	tokens float64
	last   time.Time
}

func (b *bucket) take(now time.Time, rate, burst float64) bool {
	b.tokens += now.Sub(b.last).Seconds() * rate
	b.last = now
	if b.tokens > burst {
		b.tokens = burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// tenant is one tenant's live state.
type tenant struct {
	name      string
	class     Class
	primary   bucket
	overdraft bucket
	inflight  int
	lastSeen  time.Time

	// counters for TenantStats
	admitted   uint64
	degraded   uint64
	rateDenied uint64
	concDenied uint64
}

// Controller admits requests per tenant. Safe for concurrent use.
type Controller struct {
	cfg Config

	// fleetLevel is the router-published fleet brownout level. At ≥ 1
	// bronze tenants lose the overdraft courtesy, at ≥ 2 standard tenants
	// do too: an over-rate request that would have been served degraded
	// gets a truthful 429 instead (the tenant *is* over its primary rate —
	// the overdraft was always a fair-weather extra), shedding the classes
	// that should yield first while the fleet is browning out.
	fleetLevel atomic.Int32

	mu      sync.Mutex
	tenants map[string]*tenant
	evicted uint64
}

// SetFleetLevel publishes the fleet brownout level (0 = calm). Routers
// call this from their fleet controller; it is cheap and lock-free.
func (c *Controller) SetFleetLevel(level int32) { c.fleetLevel.Store(level) }

// FleetLevel reports the currently published level.
func (c *Controller) FleetLevel() int32 { return c.fleetLevel.Load() }

// overdraftAllowed reports whether the tenant's class keeps its overdraft
// courtesy at the current fleet level.
func (c *Controller) overdraftAllowed(cl Class) bool {
	switch l := c.fleetLevel.Load(); {
	case l >= 2:
		return cl.Name == ClassGold.Name
	case l >= 1:
		return cl.Name != ClassBronze.Name
	}
	return true
}

// NewController builds a controller; it returns an error only for an
// unparseable class in Config.Tenants.
func NewController(cfg Config) (*Controller, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Controller{cfg: c, tenants: make(map[string]*tenant)}, nil
}

// DefaultTenant is the bucket anonymous traffic lands in when no tenant
// header is present: unlabeled clients share one standard-class budget
// instead of each minting a fresh one.
const DefaultTenant = "anonymous"

// Admit runs the admission ladder for one request from the tenant.
// degradable reports whether the caller can serve this request degraded
// (e.g. a Flow III route); when false, the overdraft step is skipped and an
// over-rate request goes straight to DenyRate.
//
// On Admit/AdmitDegraded the returned release must be called exactly once
// when the request finishes — it frees the concurrency slot. On deny,
// release is nil and retryAfter hints when a token will exist.
func (c *Controller) Admit(name string, degradable bool) (d Decision, release func(), retryAfter time.Duration) {
	if name == "" {
		name = DefaultTenant
	}
	now := c.cfg.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tenantLocked(name, now)
	t.lastSeen = now

	rate := c.cfg.Rate * t.class.RateMult
	burst := c.cfg.Burst * t.class.RateMult
	maxConc := c.maxConcFor(t.class)

	if maxConc > 0 && t.inflight >= maxConc {
		t.concDenied++
		// Concurrency frees up as soon as any in-flight request finishes;
		// one refill interval is an honest, cheap hint.
		return DenyConcurrency, nil, retryHint(rate)
	}
	switch {
	case c.cfg.Rate < 0 || t.primary.take(now, rate, burst):
		t.admitted++
		t.inflight++
		return Admit, c.releaseFunc(name), 0
	case degradable && c.overdraftAllowed(t.class) && t.overdraft.take(now, rate, burst):
		t.degraded++
		t.inflight++
		return AdmitDegraded, c.releaseFunc(name), 0
	default:
		t.rateDenied++
		return DenyRate, nil, retryHint(rate)
	}
}

// retryHint is the time until one token refills, clamped to [100ms, 30s].
func retryHint(rate float64) time.Duration {
	if rate <= 0 {
		return time.Second
	}
	d := time.Duration(float64(time.Second) / rate)
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

func (c *Controller) maxConcFor(cl Class) int {
	if c.cfg.MaxConcurrent < 0 {
		return 0 // disabled
	}
	n := int(float64(c.cfg.MaxConcurrent)*cl.ConcMult + 0.999)
	if n < 1 {
		n = 1
	}
	return n
}

// releaseFunc returns the idempotent concurrency release for one admit.
func (c *Controller) releaseFunc(name string) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			if t, ok := c.tenants[name]; ok && t.inflight > 0 {
				t.inflight--
			}
			c.mu.Unlock()
		})
	}
}

// tenantLocked finds or creates the tenant, evicting the longest-idle
// zero-inflight tenant when the table is full. Callers hold c.mu.
func (c *Controller) tenantLocked(name string, now time.Time) *tenant {
	if t, ok := c.tenants[name]; ok {
		return t
	}
	if len(c.tenants) >= c.cfg.MaxTenants {
		var victim *tenant
		for _, t := range c.tenants {
			if t.inflight > 0 {
				continue
			}
			if victim == nil || t.lastSeen.Before(victim.lastSeen) {
				victim = t
			}
		}
		if victim != nil {
			delete(c.tenants, victim.name)
			c.evicted++
		}
	}
	cl := ClassStandard
	if cname, ok := c.cfg.Tenants[name]; ok {
		cl, _ = ParseClass(cname) // validated at NewController
	}
	t := &tenant{
		name:  name,
		class: cl,
		// New tenants start with full buckets: the first burst is free.
		primary:   bucket{tokens: c.cfg.Burst * cl.RateMult, last: now},
		overdraft: bucket{tokens: c.cfg.Burst * cl.RateMult, last: now},
	}
	c.tenants[name] = t
	return t
}

// TenantStats is one tenant's /v1/stats row.
type TenantStats struct {
	Class      string  `json:"class"`
	InFlight   int     `json:"in_flight"`
	Admitted   uint64  `json:"admitted"`
	Degraded   uint64  `json:"degraded"`
	RateDenied uint64  `json:"rate_denied"`
	ConcDenied uint64  `json:"concurrency_denied"`
	Tokens     float64 `json:"tokens"`
}

// Stats snapshots every live tenant, keyed by tenant name, plus the number
// of tenants evicted from the bounded table since start.
func (c *Controller) Stats() (map[string]TenantStats, uint64) {
	now := c.cfg.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]TenantStats, len(c.tenants))
	for name, t := range c.tenants {
		// Refresh the bucket so the reported token count is current, not
		// as-of the tenant's last request.
		rate := c.cfg.Rate * t.class.RateMult
		burst := c.cfg.Burst * t.class.RateMult
		tokens := t.primary.tokens + now.Sub(t.primary.last).Seconds()*rate
		if tokens > burst {
			tokens = burst
		}
		out[name] = TenantStats{
			Class:      t.class.Name,
			InFlight:   t.inflight,
			Admitted:   t.admitted,
			Degraded:   t.degraded,
			RateDenied: t.rateDenied,
			ConcDenied: t.concDenied,
			Tokens:     tokens,
		}
	}
	return out, c.evicted
}

// ParseTenantClasses parses a flag-style "tenant=class,tenant=class" spec.
func ParseTenantClasses(spec string) (map[string]string, error) {
	if spec == "" {
		return nil, nil
	}
	out := map[string]string{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, class, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("qos: bad tenant spec %q (want tenant=class)", part)
		}
		if _, err := ParseClass(class); err != nil {
			return nil, err
		}
		out[name] = strings.ToLower(class)
	}
	return out, nil
}

// Tenants lists the configured tenant names in sorted order (for logs).
func (c *Controller) Tenants() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.tenants))
	for n := range c.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
