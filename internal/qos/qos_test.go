package qos

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock steps time manually so bucket refill is deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func newTestController(t *testing.T, cfg Config, clk *fakeClock) *Controller {
	t.Helper()
	cfg.now = clk.now
	c, err := NewController(cfg)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	return c
}

func TestAdmitLadder(t *testing.T) {
	clk := newFakeClock()
	// Rate 1/s, burst 2: two immediate admits, then two degraded admits from
	// the overdraft bucket, then deny.
	c := newTestController(t, Config{Rate: 1, Burst: 2, MaxConcurrent: 100}, clk)

	for i := 0; i < 2; i++ {
		d, rel, _ := c.Admit("acme", true)
		if d != Admit {
			t.Fatalf("admit %d: got %v, want Admit", i, d)
		}
		rel()
	}
	for i := 0; i < 2; i++ {
		d, rel, _ := c.Admit("acme", true)
		if d != AdmitDegraded {
			t.Fatalf("overdraft admit %d: got %v, want AdmitDegraded", i, d)
		}
		rel()
	}
	d, rel, retry := c.Admit("acme", true)
	if d != DenyRate {
		t.Fatalf("dry buckets: got %v, want DenyRate", d)
	}
	if rel != nil {
		t.Fatal("deny must return nil release")
	}
	if retry <= 0 {
		t.Fatalf("deny must hint a positive retry-after, got %v", retry)
	}

	// One second refills one token in each bucket.
	clk.advance(time.Second)
	if d, rel, _ := c.Admit("acme", true); d != Admit {
		t.Fatalf("after refill: got %v, want Admit", d)
	} else {
		rel()
	}
}

func TestNonDegradableSkipsOverdraft(t *testing.T) {
	clk := newFakeClock()
	c := newTestController(t, Config{Rate: 1, Burst: 1, MaxConcurrent: 100}, clk)
	if d, rel, _ := c.Admit("acme", false); d != Admit {
		t.Fatalf("first: got %v, want Admit", d)
	} else {
		rel()
	}
	// Primary dry; request is not degradable, so the overdraft bucket must
	// not be consulted: straight to DenyRate.
	if d, _, _ := c.Admit("acme", false); d != DenyRate {
		t.Fatalf("non-degradable over rate: got %v, want DenyRate", d)
	}
	// A degradable request still finds the untouched overdraft bucket.
	if d, rel, _ := c.Admit("acme", true); d != AdmitDegraded {
		t.Fatalf("degradable over rate: got %v, want AdmitDegraded", d)
	} else {
		rel()
	}
}

func TestConcurrencyQuota(t *testing.T) {
	clk := newFakeClock()
	c := newTestController(t, Config{Rate: 1000, Burst: 1000, MaxConcurrent: 2}, clk)

	_, rel1, _ := c.Admit("acme", false)
	_, rel2, _ := c.Admit("acme", false)
	d, rel3, _ := c.Admit("acme", false)
	if d != DenyConcurrency {
		t.Fatalf("third in-flight: got %v, want DenyConcurrency", d)
	}
	if rel3 != nil {
		t.Fatal("deny must return nil release")
	}
	rel1()
	if d, rel, _ := c.Admit("acme", false); d != Admit {
		t.Fatalf("after release: got %v, want Admit", d)
	} else {
		rel()
	}
	// Double-release must not free a second slot.
	rel2()
	rel2()
	st, _ := c.Stats()
	if got := st["acme"].InFlight; got != 0 {
		t.Fatalf("in_flight after releases: got %d, want 0", got)
	}
}

func TestTenantIsolation(t *testing.T) {
	clk := newFakeClock()
	c := newTestController(t, Config{Rate: 1, Burst: 1, MaxConcurrent: 100}, clk)

	// Hot tenant burns both its buckets dry.
	c.Admit("hot", true)
	c.Admit("hot", true)
	if d, _, _ := c.Admit("hot", true); d != DenyRate {
		t.Fatalf("hot tenant: got %v, want DenyRate", d)
	}
	// A different tenant is untouched.
	if d, rel, _ := c.Admit("cold", true); d != Admit {
		t.Fatalf("cold tenant penalized by hot tenant: got %v, want Admit", d)
	} else {
		rel()
	}
}

func TestPriorityClasses(t *testing.T) {
	clk := newFakeClock()
	c := newTestController(t, Config{
		Rate: 1, Burst: 4, MaxConcurrent: 4,
		Tenants: map[string]string{"vip": "gold", "batch": "bronze"},
	}, clk)

	// Gold gets 4x the burst: 16 admits before the primary runs dry.
	n := 0
	for {
		d, rel, _ := c.Admit("vip", false)
		if d != Admit {
			break
		}
		rel()
		n++
	}
	if n != 16 {
		t.Fatalf("gold burst: got %d admits, want 16", n)
	}
	// Bronze gets a quarter: burst 4 * 0.25 = 1 admit.
	n = 0
	for {
		d, rel, _ := c.Admit("batch", false)
		if d != Admit {
			break
		}
		rel()
		n++
	}
	if n != 1 {
		t.Fatalf("bronze burst: got %d admits, want 1", n)
	}
	// Bronze concurrency: 4 * 0.5 = 2 slots. Bronze burst is 1 per bucket,
	// so the second admit rides the overdraft; the third must hit the
	// concurrency gate (checked before rate).
	clk.advance(time.Hour) // refill everything
	_, r1, _ := c.Admit("batch", true)
	_, r2, _ := c.Admit("batch", true)
	if d, _, _ := c.Admit("batch", true); d != DenyConcurrency {
		t.Fatalf("bronze third in-flight: got %v, want DenyConcurrency", d)
	}
	r1()
	r2()
}

func TestAnonymousSharesOneBucket(t *testing.T) {
	clk := newFakeClock()
	c := newTestController(t, Config{Rate: 1, Burst: 2, MaxConcurrent: 100}, clk)
	c.Admit("", true)
	c.Admit("", true)
	st, _ := c.Stats()
	if got := st[DefaultTenant].Admitted; got != 2 {
		t.Fatalf("anonymous admits: got %d, want 2", got)
	}
}

func TestTenantTableBounded(t *testing.T) {
	clk := newFakeClock()
	c := newTestController(t, Config{Rate: 1000, Burst: 1000, MaxConcurrent: 10, MaxTenants: 4}, clk)
	for i := 0; i < 10; i++ {
		clk.advance(time.Millisecond) // distinct lastSeen per tenant
		_, rel, _ := c.Admit(fmt.Sprintf("t%d", i), false)
		rel()
	}
	st, evicted := c.Stats()
	if len(st) > 4 {
		t.Fatalf("tenant table: got %d entries, want <= 4", len(st))
	}
	if evicted != 6 {
		t.Fatalf("evicted: got %d, want 6", evicted)
	}
	// The most recent tenants survive.
	if _, ok := st["t9"]; !ok {
		t.Fatal("most recent tenant t9 was evicted")
	}
}

func TestRateLimitDisabled(t *testing.T) {
	clk := newFakeClock()
	c := newTestController(t, Config{Rate: -1, MaxConcurrent: 100}, clk)
	for i := 0; i < 100; i++ {
		d, rel, _ := c.Admit("acme", false)
		if d != Admit {
			t.Fatalf("admit %d with rate disabled: got %v", i, d)
		}
		rel()
	}
}

func TestParseTenantClasses(t *testing.T) {
	m, err := ParseTenantClasses("vip=gold, batch=bronze,plain=standard")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := map[string]string{"vip": "gold", "batch": "bronze", "plain": "standard"}
	for k, v := range want {
		if m[k] != v {
			t.Fatalf("tenant %q: got %q, want %q", k, m[k], v)
		}
	}
	if _, err := ParseTenantClasses("vip=platinum"); err == nil {
		t.Fatal("unknown class must error")
	}
	if _, err := ParseTenantClasses("=gold"); err == nil {
		t.Fatal("empty tenant must error")
	}
	if m, err := ParseTenantClasses(""); err != nil || m != nil {
		t.Fatalf("empty spec: got %v, %v", m, err)
	}
}

func TestControllerConcurrentAccess(t *testing.T) {
	c, err := NewController(Config{Rate: 10000, Burst: 10000, MaxConcurrent: 64, MaxTenants: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d, rel, _ := c.Admit(fmt.Sprintf("t%d", (g+i)%12), i%2 == 0)
				if d.Admitted() {
					rel()
				}
			}
		}(g)
	}
	wg.Wait()
	c.Stats()
	c.Tenants()
}

func TestDecisionString(t *testing.T) {
	cases := map[Decision]string{
		Admit: "admit", AdmitDegraded: "admit_degraded",
		DenyRate: "deny_rate", DenyConcurrency: "deny_concurrency",
	}
	for d, want := range cases {
		if d.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(d), d.String(), want)
		}
	}
	if !Admit.Admitted() || !AdmitDegraded.Admitted() || DenyRate.Admitted() {
		t.Fatal("Admitted() wrong")
	}
}
