package flows

import (
	"testing"

	"merlin/internal/net"
)

func TestFlowsSmoke(t *testing.T) {
	p := FastProfile()
	nt := net.Generate(net.DefaultGenSpec(8, 42), p.Tech, p.Lib.Driver)
	rs, err := RunAll(nt, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		t.Logf("%-16v delay=%.4f req=%.4f bufarea=%8.0f wl=%8d loops=%d rt=%v",
			r.Flow, r.Eval.Delay, r.Eval.ReqAtDriverInput, r.Eval.BufferArea, r.Eval.Wirelength, r.Loops, r.Runtime)
	}
}
