package flows

import (
	"testing"

	"merlin/internal/net"
)

func TestRunAllProducesComparableResults(t *testing.T) {
	p := FastProfile()
	nt := net.Generate(net.DefaultGenSpec(7, 11), p.Tech, p.Lib.Driver)
	rs, err := RunAll(nt, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("want 3 results, got %d", len(rs))
	}
	for i, r := range rs {
		if r.Flow != ID(i) {
			t.Fatalf("result %d has flow %v", i, r.Flow)
		}
		if err := r.Tree.Validate(); err != nil {
			t.Fatalf("%v: %v", r.Flow, err)
		}
		if r.Eval.Delay <= 0 {
			t.Fatalf("%v: non-positive delay %g", r.Flow, r.Eval.Delay)
		}
		if r.Runtime <= 0 {
			t.Fatalf("%v: no runtime recorded", r.Flow)
		}
	}
	if rs[2].Loops < 1 {
		t.Fatal("MERLIN must report its loop count")
	}
}

func TestFlowsDeterministic(t *testing.T) {
	p := FastProfile()
	nt := net.Generate(net.DefaultGenSpec(6, 21), p.Tech, p.Lib.Driver)
	for _, f := range []ID{FlowI, FlowII, FlowIII} {
		a, err := Run(f, nt, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(f, nt, p)
		if err != nil {
			t.Fatal(err)
		}
		if a.Eval.Delay != b.Eval.Delay || a.Eval.BufferArea != b.Eval.BufferArea {
			t.Fatalf("%v: nondeterministic results: %+v vs %+v", f, a.Eval, b.Eval)
		}
	}
}

func TestProfileForScalesDown(t *testing.T) {
	small := ProfileFor(5)
	big := ProfileFor(60)
	if big.Core.MaxSols > small.Core.MaxSols {
		t.Fatal("curve cap must not grow with n")
	}
	if big.MaxCands > small.MaxCands {
		t.Fatal("candidate budget must not grow with n")
	}
	if big.Core.MaxLoops > small.Core.MaxLoops {
		t.Fatal("loop bound must not grow with n")
	}
	if len(big.Lib.Buffers) > len(small.Lib.Buffers) {
		t.Fatal("library subset must not grow with n")
	}
}

func TestUnknownFlowRejected(t *testing.T) {
	p := FastProfile()
	nt := net.Generate(net.DefaultGenSpec(4, 2), p.Tech, p.Lib.Driver)
	if _, err := Run(ID(99), nt, p); err == nil {
		t.Fatal("unknown flow accepted")
	}
}

func TestFlowStrings(t *testing.T) {
	for f, want := range map[ID]string{
		FlowI:   "I:LTTREE+PTREE",
		FlowII:  "II:PTREE+GI90",
		FlowIII: "III:MERLIN",
	} {
		if f.String() != want {
			t.Fatalf("String(%d) = %q", int(f), f.String())
		}
	}
}

// TestShape is the headline qualitative claim of Table 1 on a mid net:
// MERLIN's delay is no worse than the sequential flows' (allowing a small
// epsilon for the DP's approximations under test-sized knobs).
func TestShape(t *testing.T) {
	p := ProfileFor(8)
	p.Core.MaxLoops = 3
	wins := 0
	for seed := int64(200); seed < 203; seed++ {
		nt := net.Generate(net.DefaultGenSpec(8, seed), p.Tech, p.Lib.Driver)
		rs, err := RunAll(nt, p)
		if err != nil {
			t.Fatal(err)
		}
		dI, dIII := rs[0].Eval.Delay, rs[2].Eval.Delay
		t.Logf("seed %d: I=%.3f II=%.3f III=%.3f", seed, dI, rs[1].Eval.Delay, dIII)
		if dIII <= dI {
			wins++
		}
	}
	if wins < 2 {
		t.Fatalf("MERLIN beat Flow I on only %d of 3 nets", wins)
	}
}
