// Package flows implements the paper's three experimental setups (§IV) over
// a shared evaluation model so comparisons are apples-to-apples:
//
//	Flow I   — fanout optimization with LTTREE, then routing with PTREE
//	           (sink order: required times for LTTREE, TSP for PTREE)
//	Flow II  — routing with PTREE (TSP order), then van Ginneken buffer
//	           insertion
//	Flow III — MERLIN: unified hierarchical buffered routing generation
//
// Every flow returns a tree.Tree evaluated with the same Elmore +
// 4-parameter timing model; rows of Tables 1 and 2 are ratios of these.
package flows

import (
	"context"
	"fmt"
	"time"

	"merlin/internal/buflib"
	"merlin/internal/core"
	"merlin/internal/curve"
	"merlin/internal/geom"
	"merlin/internal/lttree"
	"merlin/internal/net"
	"merlin/internal/order"
	"merlin/internal/ptree"
	"merlin/internal/rc"
	"merlin/internal/tree"
	"merlin/internal/vangin"
)

// WLMLength is the per-fanout average wire length (λ) behind Flow I's
// wire-load model; see RunFlowI.
const WLMLength = 3000

// ID names a flow.
type ID int

const (
	FlowI ID = iota
	FlowII
	FlowIII
)

// String renders the paper's flow label.
func (f ID) String() string {
	switch f {
	case FlowI:
		return "I:LTTREE+PTREE"
	case FlowII:
		return "II:PTREE+GI90"
	case FlowIII:
		return "III:MERLIN"
	}
	return fmt.Sprintf("flow(%d)", int(f))
}

// Profile bundles the technology, library and per-algorithm knobs. Knobs
// scale with net size so the cubic-and-worse DPs stay within a test budget;
// ProfileFor documents the scaling.
type Profile struct {
	Tech     rc.Technology
	Lib      *buflib.Library
	MaxCands int
	PTree    ptree.Options
	LT       lttree.Options
	VG       vangin.Options
	Core     core.Options
}

// ProfileFor returns knobs scaled for an n-sink net. The paper's Table 1
// setup uses α=15 and full Hanan candidates; on this repository's budget we
// shrink α, the candidate count, the curve cap and the buffer subset as n
// grows — all four are the quantization/candidate knobs whose effect §III.1
// and Lemma 1 discuss. DESIGN.md §4 records the deviation.
func ProfileFor(n int) Profile {
	tech := rc.Default035()
	full := buflib.Default035()
	p := Profile{Tech: tech, PTree: ptree.DefaultOptions(), LT: lttree.DefaultOptions(), VG: vangin.DefaultOptions()}
	p.Core = core.DefaultOptions()
	switch {
	case n <= 10:
		p.Lib = full.Small(6)
		p.MaxCands = 12
		p.Core.Alpha = 6
		p.Core.MaxSols = 6
		p.Core.MaxLoops = 6
	case n <= 24:
		p.Lib = full.Small(5)
		p.MaxCands = 11
		p.Core.Alpha = 5
		p.Core.MaxSols = 5
		p.Core.MaxLoops = 4
	case n <= 40:
		p.Lib = full.Small(5)
		p.MaxCands = 10
		p.Core.Alpha = 4
		p.Core.MaxSols = 4
		p.Core.MaxLoops = 3
	default:
		p.Lib = full.Small(4)
		p.MaxCands = 9
		p.Core.Alpha = 4
		p.Core.MaxSols = 3
		p.Core.MaxLoops = 2
	}
	p.LT.PTree = p.PTree
	p.PTree.MaxSols = p.Core.MaxSols + 2
	p.VG.MaxSols = p.Core.MaxSols + 2
	return p
}

// FastProfile returns deliberately small knobs for unit tests.
func FastProfile() Profile {
	p := ProfileFor(10)
	p.Lib = buflib.Default035().Small(5)
	p.MaxCands = 10
	p.Core.Alpha = 4
	p.Core.MaxSols = 4
	p.Core.MaxLoops = 4
	return p
}

// Result is one flow's outcome on one net.
type Result struct {
	Flow    ID
	Tree    *tree.Tree
	Eval    tree.Eval
	Runtime time.Duration
	// Loops is MERLIN's iteration count (Flow III only).
	Loops int
	// Frontier is the final non-inferior curve at the source (Flow III
	// only), for area/required-time trade-off exploration.
	Frontier *curve.Curve
}

// Run dispatches a flow.
func Run(f ID, n *net.Net, p Profile) (Result, error) {
	return RunCtx(context.Background(), f, n, p)
}

// RunCtx dispatches a flow with cooperative cancellation. Flow III threads
// ctx into MERLIN's search loops; Flows I and II are monolithic DPs that
// check ctx only between their phases. This is the entry point the service
// worker pool calls with per-request deadlines.
func RunCtx(ctx context.Context, f ID, n *net.Net, p Profile) (Result, error) {
	switch f {
	case FlowI:
		return RunFlowI(n, p)
	case FlowII:
		return runFlowII(ctx, n, p)
	case FlowIII:
		return RunFlowIIIOn(ctx, NewEngineIII(n, p), p)
	}
	return Result{}, fmt.Errorf("flows: unknown flow %d", int(f))
}

// RunFlowI is Setup I: LTTREE fanout optimization (required-time order)
// followed by per-level PTREE routing (TSP order inside each level).
func RunFlowI(n *net.Net, p Profile) (Result, error) {
	start := time.Now()
	// Wire-load model for the logic-domain phase. Real mapped flows of the
	// paper's era used library wire-load models: fanout-based lookup tables
	// calibrated for *average* nets — a fixed per-pin wire estimate that
	// badly underestimates nets spread across the die, which is exactly the
	// regime Table 1 constructs (box sized so wire delay ≈ gate delay) and
	// the reason the sequential flow loses. WLMLength is that average-net
	// constant; it deliberately does not look at the actual positions, just
	// as SIS could not.
	lt := p.LT
	if lt.WireLoadPerSink == 0 {
		lt.WireLoadPerSink = p.Tech.WireC(WLMLength)
	}
	t, err := lttree.Solve(n, p.Lib, p.Tech, lt, p.MaxCands)
	if err != nil {
		return Result{}, fmt.Errorf("flow I: %w", err)
	}
	return finish(FlowI, n, p, t, start, 0)
}

// RunFlowII is Setup II: whole-net PTREE routing with the TSP order, then
// van Ginneken buffer insertion on the fixed tree.
func RunFlowII(n *net.Net, p Profile) (Result, error) {
	return runFlowII(context.Background(), n, p)
}

func runFlowII(ctx context.Context, n *net.Net, p Profile) (Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("flow II: %w", err)
	}
	cands := geom.ReducedHanan(n.Terminals(), p.MaxCands)
	solver := ptree.NewSolver(n, cands, p.Tech, p.PTree)
	ord := order.TSP(n.Source, n.SinkPoints())
	routed, _, err := solver.Solve(ord)
	if err != nil {
		return Result{}, fmt.Errorf("flow II: routing: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("flow II: canceled between routing and insertion: %w", err)
	}
	vg := p.VG
	if vg.SegLen == 0 {
		// Subdivide wires so van Ginneken gets interior insertion points at
		// roughly the spacing where buffering a wire starts to pay off.
		box := geom.BoundingBox(n.Terminals())
		vg.SegLen = (box.Width() + box.Height()) / 8
		if vg.SegLen < 1 {
			vg.SegLen = 1
		}
	}
	buffered, _, err := vangin.Insert(routed, p.Lib, p.Tech, vg)
	if err != nil {
		return Result{}, fmt.Errorf("flow II: insertion: %w", err)
	}
	return finish(FlowII, n, p, buffered, start, 0)
}

// RunFlowIII is Setup III: MERLIN with the TSP initial order.
func RunFlowIII(n *net.Net, p Profile) (Result, error) {
	return RunFlowIIIOn(context.Background(), NewEngineIII(n, p), p)
}

// NewEngineIII builds the Flow III engine for (n, p): reduced-Hanan
// candidates at the profile's budget over the profile's library, technology
// and core options. The engine identity is fully determined by the net and
// these profile knobs, so services may cache engines keyed by them and reuse
// the DP memos across requests on the same net (§III.4's OVERLAP reuse);
// see RunFlowIIIOn for which knobs may vary between reuses.
func NewEngineIII(n *net.Net, p Profile) *core.Engine {
	cands := geom.ReducedHanan(n.Terminals(), p.MaxCands)
	return core.NewEngine(n, cands, p.Lib, p.Tech, p.Core)
}

// RunFlowIIIOn runs MERLIN on a prepared (possibly reused) engine. Only the
// extraction goal, the outer-loop bound and the resource budget are re-read
// from p — none of them affect the memoized solution curves, so an engine
// built once per net can serve repeated requests that explore different area
// budgets, required-time floors or per-request resource budgets. The
// remaining p.Core knobs must match the ones the engine was built with;
// callers reusing engines key their cache accordingly. A run that outgrows
// p.Core.Budget returns an error wrapping core.ErrBudgetExceeded; an
// internal panic is contained at the engine boundary and returns an error
// wrapping core.ErrInternal.
func RunFlowIIIOn(ctx context.Context, en *core.Engine, p Profile) (Result, error) {
	start := time.Now()
	en.Opts.Goal = p.Core.Goal
	en.Opts.MaxLoops = p.Core.MaxLoops
	en.Opts.Budget = p.Core.Budget
	res, err := en.MerlinCtx(ctx, nil)
	if err != nil {
		return Result{}, fmt.Errorf("flow III: %w", err)
	}
	out, err := finish(FlowIII, en.Net, p, res.Tree, start, res.Loops)
	if err != nil {
		return Result{}, err
	}
	out.Frontier = res.Frontier
	return out, nil
}

func finish(f ID, n *net.Net, p Profile, t *tree.Tree, start time.Time, loops int) (Result, error) {
	if err := t.Validate(); err != nil {
		return Result{}, fmt.Errorf("%v: invalid tree: %w", f, err)
	}
	return Result{
		Flow:    f,
		Tree:    t,
		Eval:    t.Evaluate(p.Tech, p.Lib.Driver),
		Runtime: time.Since(start),
		Loops:   loops,
	}, nil
}

// RunAll runs the three flows on one net.
func RunAll(n *net.Net, p Profile) ([]Result, error) {
	var out []Result
	for _, f := range []ID{FlowI, FlowII, FlowIII} {
		r, err := Run(f, n, p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
