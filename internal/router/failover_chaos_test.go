package router

import (
	"bytes"
	"encoding/json"
	"io"
	stdnet "net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"merlin/internal/journal"
	"merlin/internal/service"
)

// TestFailoverChaos is the job-failover acceptance drill: three durable,
// gossiping, replicating merlind backends with orphan takeover enabled, one
// of which is SIGKILLed while holding acknowledged-but-unfinished jobs — and
// is NEVER restarted. Every acknowledged job must still reach a truthful
// terminal state, served by a survivor that claimed the orphaned lease at a
// higher term; a poll through the router must never say 404 and never wait
// for the dead owner to come back. Afterwards the three write-ahead logs are
// replayed and judged: every job the victim acknowledged has a journaled
// terminal record somewhere in the fleet, and no job was ever acknowledged
// twice — no two terminal records at the same term from different owners.
func TestFailoverChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess failover drill; skipped in -short")
	}

	addrs, dirs, backends := reserveFailoverFleet(t, 3)
	ring := strings.Join(backends, ",")
	children := make([]*exec.Cmd, len(backends))
	for i := range children {
		// A per-job delay keeps a queue of acknowledged-but-unfinished work
		// behind the workers, so the SIGKILL provably lands on acked jobs.
		children[i] = startFailoverChild(t, addrs[i], dirs[i],
			failoverPeersOf(backends, nil, backends[i]), ring, "service.worker=delay:100ms")
	}
	defer killFailoverChildren(children)
	for _, b := range backends {
		waitClusterReady(t, b, 30*time.Second)
	}

	// Router in front, gossiping with the backends so the claimant-aware
	// poll path (owner → claimant → scatter) is live.
	routerLn, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	routerURL := "http://" + routerLn.Addr().String()
	rt, err := New(Config{
		Backends:         backends,
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     time.Second,
		FailureThreshold: 3,
		EjectBase:        100 * time.Millisecond,
		EjectMax:         500 * time.Millisecond,
		MaxAttempts:      3,
		GossipSelf:       routerURL,
		GossipPeers:      backends,
		GossipInterval:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ts := httptest.NewUnstartedServer(rt.Handler())
	ts.Listener.Close()
	ts.Listener = routerLn
	ts.Start()
	defer ts.Close()
	hc := &http.Client{Timeout: 30 * time.Second}

	// A death verdict needs life evidence first: every backend must have
	// learned every other backend alive before the kill, or the victim's
	// silence is indistinguishable from never having existed.
	waitFailoverGossip(t, hc, backends)

	// Load the victim with a backlog of acknowledged jobs (directly, so
	// ownership is certain), plus a spread through the router.
	victim := backends[0]
	var acked []string
	for i := 0; i < 24; i++ {
		acked = append(acked, submitFailoverJob(t, hc, victim, int64(9000+i)))
	}
	for i := 0; i < 8; i++ {
		acked = append(acked, submitFailoverJob(t, hc, ts.URL, int64(9500+i)))
	}

	// Manifest push is async and lossy by design — a manifest still sitting
	// in the victim's replication queue dies with it, and that job is then
	// legitimately unrecoverable. This drill is about takeover, not manifest
	// loss, so let the queue drain before pulling the plug.
	waitFailoverCond(t, 20*time.Second, "victim replication queue drained", func() bool {
		st := failoverBackendStats(t, hc, victim)
		return st.Durability != nil && st.Durability.Replication != nil &&
			st.Durability.Replication.Pending == 0
	})

	// SIGKILL the victim while its queue is deep. It never comes back.
	if err := children[0].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = children[0].Wait()
	children[0] = nil

	// Every acknowledged job reaches a truthful terminal state through the
	// router — without the dead owner. 404 at any point means an acked job
	// was lost; a non-done terminal means a verdict was fabricated.
	deadline := time.Now().Add(90 * time.Second)
	for _, id := range acked {
		for {
			resp, err := hc.Get(ts.URL + "/v1/jobs/" + id)
			if err != nil {
				t.Fatalf("poll %s: %v", id, err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusNotFound {
				t.Fatalf("acknowledged job %s polled as 404: an acked job was lost", id)
			}
			if resp.StatusCode == http.StatusOK {
				var st service.JobStatus
				if err := json.Unmarshal(raw, &st); err != nil {
					t.Fatalf("poll %s: %v (%s)", id, err, raw)
				}
				if st.State == string(service.JobDone) || st.State == string(service.JobDegraded) {
					if st.Result == nil {
						t.Fatalf("job %s ended %s without its result", id, st.State)
					}
					break
				}
				if service.JobState(st.State).Terminal() {
					t.Fatalf("job %s ended %s (%s %s), want done", id, st.State, st.Code, st.Error)
				}
			}
			if time.Now().After(deadline) {
				for _, b := range backends[1:] {
					st := failoverBackendStats(t, hc, b)
					var lease []byte
					if st.Durability != nil {
						lease, _ = json.Marshal(st.Durability.Leases)
					}
					jr, err := hc.Get(b + "/v1/jobs/" + id)
					jraw := []byte("unreachable")
					if err == nil {
						jraw, _ = io.ReadAll(jr.Body)
						jr.Body.Close()
					}
					gv, _ := json.Marshal(st.Gossip)
					t.Logf("survivor %s: takeovers=%d fenced=%d leases=%s job=%s gossip=%s",
						b, st.Counters["jobs.takeovers"], st.Counters["jobs.fenced"], lease, jraw, gv)
				}
				t.Fatalf("acknowledged job %s never reached terminal after the owner died", id)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	// The survivors must have actually taken orphans over (not merely served
	// results the victim managed to replicate before dying).
	takeovers := uint64(0)
	for _, b := range backends[1:] {
		st := failoverBackendStats(t, hc, b)
		takeovers += st.Counters["jobs.takeovers"]
	}
	if takeovers == 0 {
		t.Error("no survivor recorded a takeover; the victim's backlog should have been orphaned")
	}
	var rst Stats
	resp, err := hc.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&rst)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("takeovers=%d router claimant_polls=%d", takeovers, rst.Counters["jobs.claimant_polls"])

	// Freeze the fleet (SIGKILL — a graceful shutdown would compact the
	// WALs we are about to judge) and inspect the journals.
	killFailoverChildren(children)
	recs := map[string][]leaseWALRecord{}
	for i, d := range dirs {
		recs[backends[i]] = replayLeaseWAL(t, d)
	}
	assertNoDualAck(t, recs)

	// Every job the victim acknowledged has a terminal record somewhere.
	terminal := map[string]bool{}
	for _, rs := range recs {
		for _, r := range rs {
			if r.T == "done" || r.T == "fail" {
				terminal[r.ID] = true
			}
		}
	}
	missing := 0
	for _, r := range recs[victim] {
		if r.T == "accept" && !terminal[r.ID] {
			t.Errorf("victim-acked job %s has no journaled terminal record anywhere", r.ID)
			missing++
		}
	}
	if missing == 0 {
		t.Logf("all victim-acked jobs journaled terminal across %d WALs", len(recs))
	}
}

// TestFencingSplitBrain is the split-brain half of the drill: the owner is
// SIGSTOPped mid-job (partitioned: silent but alive, journal intact), a
// successor claims the orphan at a higher term and finishes it, then the owner
// thaws and finishes the SAME job at its stale term 1. The resurrected
// owner's result push must be rejected by the fencing token check at the
// replica write, the claimant must keep serving its result, and the WALs
// must show the claim at the higher term with no dual acknowledgement.
func TestFencingSplitBrain(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess fencing drill; skipped in -short")
	}

	addrs, dirs, backends := reserveFailoverFleet(t, 3)
	ring := strings.Join(backends, ",")
	children := make([]*exec.Cmd, len(backends))
	for i := range children {
		faults := "" // peers compute instantly, so the claim finishes fast
		if i == 0 {
			// The victim's worker sleeps long enough for the stop, the death
			// verdict, and the takeover to land before it would finish; the
			// monotonic clock runs through a SIGSTOP, so after SIGCONT the
			// sleep returns immediately and the stale-term finish races out.
			faults = "service.worker=delay:2500ms"
		}
		children[i] = startFailoverChild(t, addrs[i], dirs[i],
			failoverPeersOf(backends, nil, backends[i]), ring, faults)
	}
	defer killFailoverChildren(children)
	for _, b := range backends {
		waitClusterReady(t, b, 30*time.Second)
	}
	hc := &http.Client{Timeout: 30 * time.Second}
	victim, peers := backends[0], backends[1:]
	waitFailoverGossip(t, hc, backends)

	// One job, owned by the victim, provably in flight.
	id := submitFailoverJob(t, hc, victim, 7777)

	// The accept-time manifest must land on the successors before the
	// partition — takeover needs the request body to recompute from.
	waitFailoverCond(t, 10*time.Second, "manifest on a peer", func() bool {
		for _, p := range peers {
			if resp, err := hc.Get(p + "/v1/jobs/" + id); err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return true
				}
			}
		}
		return false
	})

	// Partition the owner: frozen mid-sleep, silent to gossip.
	if err := children[0].Process.Signal(syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}

	// A successor declares the owner dead, claims at a higher term, recomputes,
	// and serves the result.
	var claimant string
	waitFailoverCond(t, 30*time.Second, "claimant serving the orphan done", func() bool {
		for _, p := range peers {
			resp, err := hc.Get(p + "/v1/jobs/" + id)
			if err != nil {
				continue
			}
			var st service.JobStatus
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err == nil && st.State == string(service.JobDone) && st.Result != nil {
				claimant = p
				return true
			}
		}
		return false
	})

	// Thaw the owner: its worker wakes, finishes the job at stale term 1,
	// and pushes the result — which the fenced replica write must reject.
	if err := children[0].Process.Signal(syscall.SIGCONT); err != nil {
		t.Fatal(err)
	}
	waitFailoverCond(t, 20*time.Second, "stale-term push fenced", func() bool {
		st := failoverBackendStats(t, hc, victim)
		if st.Durability != nil && st.Durability.Replication != nil &&
			st.Durability.Replication.PushFenced > 0 {
			return true
		}
		// The owner may instead have adopted the gossiped claim in time and
		// fenced its own finish locally — equally split-brain-safe.
		return st.Counters["jobs.fenced"] > 0
	})
	fenced := uint64(0)
	for _, p := range peers {
		fenced += failoverBackendStats(t, hc, p).Counters["replica.fenced"]
	}
	t.Logf("replica-side fenced writes on peers: %d", fenced)

	// The claimant still serves its own acknowledged result.
	resp, err := hc.Get(claimant + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var st service.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || st.State != string(service.JobDone) || st.Result == nil {
		t.Fatalf("claimant poll after the stale finish = %+v (%v), want done with result", st, err)
	}

	// Journal verdict: the claimant holds the claim and the terminal at a
	// term above 1, and nowhere did two owners acknowledge the same term.
	killFailoverChildren(children)
	recs := map[string][]leaseWALRecord{}
	for i, d := range dirs {
		recs[backends[i]] = replayLeaseWAL(t, d)
	}
	assertNoDualAck(t, recs)
	var claimTerm, doneTerm uint64
	for _, b := range peers {
		for _, r := range recs[b] {
			if r.ID != id {
				continue
			}
			if r.T == "claim" && r.Term > claimTerm {
				claimTerm = r.Term
			}
			if (r.T == "done" || r.T == "fail") && r.Term > doneTerm {
				doneTerm = r.Term
			}
		}
	}
	if claimTerm < 2 {
		t.Errorf("no journaled claim above term 1 on any successor (got %d)", claimTerm)
	}
	if doneTerm < claimTerm {
		t.Errorf("claimant's terminal record at term %d below its claim at term %d", doneTerm, claimTerm)
	}
}

// leaseWALRecord is the lease-bearing subset of the service's WAL record
// shape, decoded straight from replayed payloads.
type leaseWALRecord struct {
	T     string `json:"t"`
	ID    string `json:"id"`
	State string `json:"state"`
	Owner string `json:"owner"`
	Term  uint64 `json:"term"`
}

// replayLeaseWAL replays the WAL under a (dead) backend's journal dir and
// returns its records. Records without a "t" (snapshots) are skipped.
func replayLeaseWAL(t *testing.T, dir string) []leaseWALRecord {
	t.Helper()
	j, err := journal.Open(filepath.Join(dir, "wal"), journal.Options{})
	if err != nil {
		t.Fatalf("open WAL under %s: %v", dir, err)
	}
	defer j.Close()
	var recs []leaseWALRecord
	if _, err := j.Replay(func(rec journal.Record) error {
		var r leaseWALRecord
		if json.Unmarshal(rec.Payload, &r) == nil && r.T != "" {
			recs = append(recs, r)
		}
		return nil
	}); err != nil {
		t.Fatalf("replay WAL under %s: %v", dir, err)
	}
	return recs
}

// assertNoDualAck is the exactly-once verdict: across every WAL in the
// fleet, no job has terminal records at the same term from different owners
// — a second acknowledgement is only legal after a journaled claim moved
// the lease to a higher term.
func assertNoDualAck(t *testing.T, recs map[string][]leaseWALRecord) {
	t.Helper()
	type ack struct {
		node  string
		owner string
	}
	byJobTerm := map[string]map[uint64]ack{}
	for node, rs := range recs {
		for _, r := range rs {
			if r.T != "done" && r.T != "fail" {
				continue
			}
			terms := byJobTerm[r.ID]
			if terms == nil {
				terms = map[uint64]ack{}
				byJobTerm[r.ID] = terms
			}
			if prev, ok := terms[r.Term]; ok && prev.owner != r.Owner {
				t.Errorf("dual acknowledgement: job %s terminal at term %d by both %q (in %s) and %q (in %s)",
					r.ID, r.Term, prev.owner, prev.node, r.Owner, node)
				continue
			}
			terms[r.Term] = ack{node: node, owner: r.Owner}
		}
	}
}

// reserveFailoverFleet pre-binds n backend addresses (gossip mesh and
// replica ring are built from URLs that must exist before any process
// boots) and allocates their journal dirs.
func reserveFailoverFleet(t *testing.T, n int) (addrs, dirs, urls []string) {
	t.Helper()
	for i := 0; i < n; i++ {
		ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, ln.Addr().String())
		ln.Close()
		dirs = append(dirs, t.TempDir())
		urls = append(urls, "http://"+addrs[i])
	}
	return addrs, dirs, urls
}

// failoverPeersOf lists every fleet URL except self, for gossip seeding.
func failoverPeersOf(backends, routers []string, self string) string {
	var ps []string
	for _, u := range append(append([]string(nil), backends...), routers...) {
		if u != self {
			ps = append(ps, u)
		}
	}
	return strings.Join(ps, ",")
}

// submitFailoverJob POSTs one job and returns its acknowledged ID.
func submitFailoverJob(t *testing.T, hc *http.Client, base string, seed int64) string {
	t.Helper()
	resp, err := hc.Post(base+"/v1/jobs", "application/json", bytes.NewReader(clusterRouteBody(seed)))
	if err != nil {
		t.Fatalf("submit job: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit job: status %d (%s)", resp.StatusCode, raw)
	}
	var st service.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil || st.ID == "" {
		t.Fatalf("submit job: no ID in %s (%v)", raw, err)
	}
	return st.ID
}

// failoverBackendStats fetches one backend's /v1/stats.
func failoverBackendStats(t *testing.T, hc *http.Client, base string) service.Stats {
	t.Helper()
	resp, err := hc.Get(base + "/v1/stats")
	if err != nil {
		t.Fatalf("stats %s: %v", base, err)
	}
	defer resp.Body.Close()
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats %s: %v", base, err)
	}
	return st
}

// waitFailoverGossip waits until every backend's gossip view holds every
// other backend as alive — the life evidence the suspicion timers need
// before a kill can ever produce a death verdict.
func waitFailoverGossip(t *testing.T, hc *http.Client, backends []string) {
	t.Helper()
	waitFailoverCond(t, 15*time.Second, "initial gossip convergence", func() bool {
		for _, b := range backends {
			st := failoverBackendStats(t, hc, b)
			if st.Gossip == nil {
				return false
			}
			alive := map[string]bool{}
			for _, m := range st.Gossip.Members {
				if m.State == "alive" {
					alive[m.Node] = true
				}
			}
			for _, other := range backends {
				if other != b && !alive[other] {
					return false
				}
			}
		}
		return true
	})
}

// waitFailoverCond polls pred until it holds or the deadline passes.
func waitFailoverCond(t *testing.T, within time.Duration, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// killFailoverChildren SIGKILLs and reaps whatever children are still up.
func killFailoverChildren(children []*exec.Cmd) {
	for i, c := range children {
		if c != nil && c.Process != nil {
			_ = c.Process.Kill()
			_ = c.Wait()
			children[i] = nil
		}
	}
}

// startFailoverChild re-execs this test binary as one gossiping,
// replicating, takeover-enabled durable merlind backend.
func startFailoverChild(t *testing.T, addr, dir, peers, ring, faults string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestFailoverChaosChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		"MERLIN_FAILOVER_CHILD=1",
		"MERLIN_FAILOVER_ADDR="+addr,
		"MERLIN_FAILOVER_DIR="+dir,
		"MERLIN_FAILOVER_PEERS="+peers,
		"MERLIN_FAILOVER_RING="+ring,
		"MERLIN_FAULTS="+faults,
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// TestFailoverChaosChild is the re-exec'd backend: a durable merlind that
// gossips at 100ms, replicates results and job manifests onto the ring, and
// sweeps for orphaned leases every 150ms. A no-op unless
// MERLIN_FAILOVER_CHILD gates it in.
func TestFailoverChaosChild(t *testing.T) {
	if os.Getenv("MERLIN_FAILOVER_CHILD") == "" {
		t.Skip("failover-chaos child; only runs re-exec'd")
	}
	self := "http://" + os.Getenv("MERLIN_FAILOVER_ADDR")
	ring, err := NewRing(strings.Split(os.Getenv("MERLIN_FAILOVER_RING"), ","), 0)
	if err != nil {
		t.Fatalf("child ring: %v", err)
	}
	s, err := service.NewDurable(service.Config{
		Workers:          2,
		JournalDir:       os.Getenv("MERLIN_FAILOVER_DIR"),
		GossipSelf:       self,
		GossipPeers:      strings.Split(os.Getenv("MERLIN_FAILOVER_PEERS"), ","),
		GossipInterval:   100 * time.Millisecond,
		ReplicaRing:      ring.PickString,
		ReplicaSelf:      self,
		ReplicaCount:     2,
		TakeoverInterval: 150 * time.Millisecond,
		LeaseTTL:         time.Second,
	})
	if err != nil {
		t.Fatalf("child boot: %v", err)
	}
	ln, err := stdnet.Listen("tcp", os.Getenv("MERLIN_FAILOVER_ADDR"))
	if err != nil {
		t.Fatalf("child bind: %v", err)
	}
	// Serve until SIGKILL; no graceful path out — the parent judges the WAL
	// exactly as a crash left it.
	_ = http.Serve(ln, s.Handler())
}
