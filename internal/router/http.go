package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"

	"merlin/internal/gossip"
	"merlin/internal/qos"
	"merlin/internal/service"
	"merlin/internal/trace"
)

// maxBodyBytes mirrors the backends' request-body bound: rejecting oversize
// bodies here keeps them off the wire entirely.
const maxBodyBytes = 8 << 20

// BackendHeader names the response header carrying which backend served a
// proxied request — operational truth for "where did this answer come
// from" in tests and debugging.
const BackendHeader = "X-Merlin-Backend"

// Handler returns the router's HTTP API — the same surface merlind serves,
// proxied onto the ring, plus the router's own introspection:
//
//	POST /v1/route     proxy to the net's home replica (retries, hedging)
//	POST /v1/batch     proxy (collected or streamed NDJSON)
//	POST /v1/jobs      proxy; the acknowledging backend is remembered so
//	                   polls go straight home
//	GET  /v1/jobs/{id} proxy to the job's owner, scattering on a miss
//	GET  /v1/trace/{id} one retained router trace (router.pick/forward/
//	                   retry/qos.admit spans)
//	GET  /v1/healthz   router liveness (always 200 while serving)
//	GET  /v1/readyz    503 when no backend is ready
//	GET  /v1/stats     ring, breaker, QoS and counter snapshot
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/route", rt.handleRoute)
	mux.HandleFunc("POST /v1/batch", rt.handleBatch)
	mux.HandleFunc("POST /v1/jobs", rt.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", rt.handleJobGet)
	mux.HandleFunc("GET /v1/trace/{id}", rt.handleTraceGet)
	mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	mux.HandleFunc("GET /v1/readyz", rt.handleReadyz)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	if rt.gossip != nil {
		mux.HandleFunc("POST "+gossip.GossipPath, gossip.Handler(rt.gossip))
	}
	return rt.recoverWare(mux)
}

// recoverWare contains handler panics, exactly like the service's: the
// request fails with a structured 500, the router keeps serving.
func (rt *Router) recoverWare(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if err, ok := rec.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				panic(rec)
			}
			rt.inc("panics")
			log.Printf("router: contained handler panic on %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			if !sw.wrote {
				writeError(sw, http.StatusInternalServerError, "internal",
					fmt.Sprintf("contained handler panic: %v", rec), 0)
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Router-tier error taxonomy, extending the service's wire shape
// (service.ErrorBody — clients parse one format fleet-wide):
//
//	413 payload_too_large      request body exceeded maxBodyBytes
//	429 tenant_rate_limited    the tenant's token buckets are dry; the
//	                           request was NOT forwarded. Retry-After hints
//	                           at the refill. Per-tenant, not fleet-wide.
//	429 tenant_concurrency     the tenant is at its in-flight quota; retry
//	                           after any of its requests completes
//	503 no_ready_backend       every ring replica is ejected, draining or
//	                           unreachable; retryable — the prober is
//	                           working on it
//	500 internal               contained router panic
//
// Backend verdicts (400/404/409/422/429 queue_full/…) relay as-is.
func writeError(w http.ResponseWriter, status int, code, msg string, retryAfterSec int) {
	if retryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSec))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(service.ErrorBody{Error: msg, Code: code})
}

// admit runs QoS admission for one request. On deny it writes the 429 and
// returns admitted=false. On degraded admission the returned body carries
// allow_degraded so the backend's ladder may serve a cheaper tier.
func (rt *Router) admit(w http.ResponseWriter, r *http.Request, ctx context.Context, path string, body []byte) (newBody []byte, release func(), admitted bool) {
	tenant := r.Header.Get(service.TenantHeader)
	degradable, reqRoute, reqBatch := degradability(path, body)
	_, sp := trace.StartSpan(ctx, "qos.admit")
	sp.SetAttr("tenant", tenant)
	d, release, retryAfter := rt.adm.Admit(tenant, degradable)
	sp.SetAttr("decision", d.String())
	sp.End()
	switch d {
	case qos.Admit:
		rt.inc("qos.admitted")
		if degradable && rt.fleetLevel() > 0 {
			// Fleet brownout: the tenant is within its own budget, but the
			// fleet as a whole is pressured — forward with the degradation
			// ladder enabled so backends may serve cheaper tiers. The
			// response stays truthful: the backend annotates the tier it
			// actually served.
			rt.inc("fleet.degraded")
			body = stampDegraded(body, reqRoute, reqBatch)
		}
		return body, release, true
	case qos.AdmitDegraded:
		rt.inc("qos.degraded")
		// Re-marshal with the degradation ladder enabled: the tenant is over
		// its primary rate, so it gets a cheaper tier instead of a 429.
		return stampDegraded(body, reqRoute, reqBatch), release, true
	case qos.DenyConcurrency:
		rt.inc("qos.denied_concurrency")
		writeError(w, http.StatusTooManyRequests, "tenant_concurrency",
			fmt.Sprintf("tenant %q is at its concurrency quota", tenantLabel(tenant)),
			int(retryAfter.Seconds())+1)
		return nil, nil, false
	default: // qos.DenyRate
		rt.inc("qos.denied_rate")
		writeError(w, http.StatusTooManyRequests, "tenant_rate_limited",
			fmt.Sprintf("tenant %q is over its request rate", tenantLabel(tenant)),
			int(retryAfter.Seconds())+1)
		return nil, nil, false
	}
}

// stampDegraded re-marshals the parsed request with allow_degraded set.
// On any marshal surprise the original body forwards unchanged — losing
// the degradation hint is safe, corrupting the request is not.
func stampDegraded(body []byte, reqRoute *service.RouteRequest, reqBatch *service.BatchRequest) []byte {
	if reqRoute != nil {
		reqRoute.AllowDegraded = true
		if nb, err := json.Marshal(reqRoute); err == nil {
			return nb
		}
	} else if reqBatch != nil {
		reqBatch.AllowDegraded = true
		if nb, err := json.Marshal(reqBatch); err == nil {
			return nb
		}
	}
	return body
}

func tenantLabel(t string) string {
	if t == "" {
		return qos.DefaultTenant
	}
	return t
}

// degradability parses the body far enough to know whether the request can
// be served degraded (Flow III only — the ladder is a Flow III feature) and
// returns the parsed request for allow_degraded re-marshaling.
func degradability(path string, body []byte) (bool, *service.RouteRequest, *service.BatchRequest) {
	switch path {
	case "/v1/route", "/v1/jobs":
		var req service.RouteRequest
		if err := json.Unmarshal(body, &req); err != nil || req.Net == nil {
			return false, nil, nil
		}
		return flowDegradable(req.Flow), &req, nil
	case "/v1/batch":
		var req service.BatchRequest
		if err := json.Unmarshal(body, &req); err != nil || len(req.Nets) == 0 {
			return false, nil, nil
		}
		return flowDegradable(req.Flow), nil, &req
	}
	return false, nil, nil
}

// flowDegradable mirrors service.parseFlow's Flow III spellings.
func flowDegradable(flow string) bool {
	switch flow {
	case "", "III", "3":
		return true
	}
	return false
}

func (rt *Router) handleRoute(w http.ResponseWriter, r *http.Request) {
	rt.inc("requests.route")
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	ctx, tr, root := rt.traces.Start(r.Context(), "proxy.route")
	defer func() { rt.traces.Finish(tr, root) }()
	r = r.WithContext(ctx)

	body, release, admitted := rt.admit(w, r, ctx, "/v1/route", body)
	if !admitted {
		return
	}
	defer release()

	key, fp := shardKey("/v1/route", body)
	_, psp := trace.StartSpan(ctx, "router.pick")
	cands := rt.candidates(key)
	psp.SetAttr("home", cands[0].id)
	psp.End()

	hedge := rt.cfg.HedgeDelay > 0 && rt.rememberFingerprint(fp)
	var br *bufferedResp
	var err error
	if hedge {
		br, err = rt.forwardHedged(ctx, "/v1/route", r.Header, body, cands)
	} else {
		br, err = rt.forward(ctx, http.MethodPost, "/v1/route", r.Header, body, cands, rt.cfg.MaxAttempts)
	}
	if err != nil {
		rt.writeForwardError(w, root, err)
		return
	}
	if root != nil {
		root.SetAttr("backend", br.backend)
	}
	relayBuffered(w, br)
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	rt.inc("requests.batch")
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	ctx, tr, root := rt.traces.Start(r.Context(), "proxy.batch")
	defer func() { rt.traces.Finish(tr, root) }()
	r = r.WithContext(ctx)

	body, release, admitted := rt.admit(w, r, ctx, "/v1/batch", body)
	if !admitted {
		return
	}
	defer release()

	key, _ := shardKey("/v1/batch", body)
	_, psp := trace.StartSpan(ctx, "router.pick")
	cands := rt.candidates(key)
	psp.SetAttr("home", cands[0].id)
	psp.End()

	// Streamed batches relay live: failover happens only before the first
	// byte reaches the client — once NDJSON items flow, a failure is the
	// client's to observe (re-requesting would replay consumed results).
	var breq service.BatchRequest
	if jerr := json.Unmarshal(body, &breq); jerr == nil && breq.Stream {
		resp, b, err := rt.forwardStream(ctx, "/v1/batch", r.Header, body, cands, rt.cfg.MaxAttempts)
		if err != nil {
			rt.writeForwardError(w, root, err)
			return
		}
		defer resp.Body.Close()
		copyRelayHeaders(w, resp.Header)
		w.Header().Set(BackendHeader, b.id)
		w.WriteHeader(resp.StatusCode)
		flushCopy(w, resp.Body)
		return
	}
	br, err := rt.forward(ctx, http.MethodPost, "/v1/batch", r.Header, body, cands, rt.cfg.MaxAttempts)
	if err != nil {
		rt.writeForwardError(w, root, err)
		return
	}
	relayBuffered(w, br)
}

func (rt *Router) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	rt.inc("requests.jobs.submit")
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	ctx, tr, root := rt.traces.Start(r.Context(), "proxy.jobs")
	defer func() { rt.traces.Finish(tr, root) }()
	r = r.WithContext(ctx)

	body, release, admitted := rt.admit(w, r, ctx, "/v1/jobs", body)
	if !admitted {
		return
	}
	defer release()

	key, _ := shardKey("/v1/jobs", body)
	_, psp := trace.StartSpan(ctx, "router.pick")
	cands := rt.candidates(key)
	psp.SetAttr("home", cands[0].id)
	psp.End()

	br, err := rt.forward(ctx, http.MethodPost, "/v1/jobs", r.Header, body, cands, rt.cfg.MaxAttempts)
	if err != nil {
		rt.writeForwardError(w, root, err)
		return
	}
	// Remember which backend acknowledged the job so polls go straight to
	// its owner instead of scattering.
	if br.status == http.StatusAccepted || br.status == http.StatusOK {
		var st service.JobStatus
		if jerr := json.Unmarshal(br.body, &st); jerr == nil && st.ID != "" {
			rt.rememberOwner(st.ID, br.backend)
		}
	}
	relayBuffered(w, br)
}

// handleJobGet proxies a poll. The owner (remembered at submit) is asked
// first; then, if gossip advertises a takeover claim for the job (the owner
// died or drained and a ring successor claimed it), the claimant; then the
// scatter across the ring in order. A 404 from a non-owner is inconclusive
// (the job lives elsewhere), so the scatter keeps going; only when every
// reachable backend says 404 is the 404 relayed. If the owner is unreachable
// and nobody else knows the job, the truthful answer is a retryable 503 —
// the job is not lost, its owner is restarting or its claimant is about to
// advertise. Acked jobs therefore never 404 and never wait out a dead
// owner's restart: the claimant answers as soon as gossip carries its claim.
func (rt *Router) handleJobGet(w http.ResponseWriter, r *http.Request) {
	rt.inc("requests.jobs.get")
	id := r.PathValue("id")
	ctx := r.Context()

	tried := map[string]bool{}
	var last404 *bufferedResp
	ownerUnreachable := false

	// try sends the poll to b (caller has checked tried + admissibility);
	// returns the relayable response, or nil with failed=true on a conn/5xx
	// error and failed=false on a 404 (recorded in last404).
	try := func(b *backend) (br *bufferedResp, failed bool) {
		tried[b.id] = true
		br, err := rt.attempt(ctx, b, http.MethodGet, "/v1/jobs/"+id, r.Header, nil)
		if err != nil {
			return nil, true
		}
		if br.status == http.StatusNotFound {
			last404 = br
			return nil, false
		}
		return br, false
	}

	if ownerID, ok := rt.ownerOf(id); ok {
		b := rt.backends[ownerID]
		if !b.admissible(rt.cfg.now()) {
			ownerUnreachable = true
		} else if br, failed := try(b); br != nil {
			relayBuffered(w, br)
			return
		} else if failed {
			ownerUnreachable = true
		}
	}
	if cid, ok := rt.claimantOf(id); ok && !tried[cid] {
		if b, known := rt.backends[cid]; known && b.admissible(rt.cfg.now()) {
			rt.inc("jobs.claimant_polls")
			if br, _ := try(b); br != nil {
				// The claimant is the job's home now; send future polls
				// straight there.
				rt.rememberOwner(id, cid)
				relayBuffered(w, br)
				return
			}
		}
	}
	// A non-owner's 200 can be a stale replicated copy — "queued" from a
	// manifest while the actual claimant holds the terminal verdict — so the
	// scatter prefers a terminal answer, falling back to the first
	// non-terminal one only after every reachable backend has been asked.
	var nonTerminal *bufferedResp
	for _, bid := range rt.order {
		b := rt.backends[bid]
		// tried is checked BEFORE admissible: admissible consumes a half-open
		// trial ticket, and only an actual attempt returns it.
		if tried[b.id] || !b.admissible(rt.cfg.now()) {
			continue
		}
		if br, _ := try(b); br != nil {
			var st service.JobStatus
			if json.Unmarshal(br.body, &st) == nil && st.ID != "" && service.JobState(st.State).Terminal() {
				rt.rememberOwner(id, b.id)
				relayBuffered(w, br)
				return
			}
			if nonTerminal == nil {
				nonTerminal = br
			}
		}
	}
	if nonTerminal != nil {
		relayBuffered(w, nonTerminal)
		return
	}
	if ownerUnreachable {
		// The backend that acknowledged this job is temporarily out of the
		// ring; answering 404 would falsely mean "lost". It is not: its WAL
		// will re-run the job on restart.
		writeError(w, http.StatusServiceUnavailable, "no_ready_backend",
			"the backend owning this job is temporarily unavailable; retry", 1)
		return
	}
	if last404 != nil {
		relayBuffered(w, last404)
		return
	}
	writeError(w, http.StatusServiceUnavailable, "no_ready_backend",
		"no backend is ready to answer this poll; retry", 1)
}

func (rt *Router) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	rt.inc("requests.trace")
	if rt.traces == nil {
		writeError(w, http.StatusNotFound, "trace_not_found", "router tracing disabled", 0)
		return
	}
	tr, ok := rt.traces.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "trace_not_found", "trace not retained", 0)
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.inc("requests.healthz")
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz: the router is ready when at least one backend could take a
// request right now.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rt.inc("requests.readyz")
	now := rt.cfg.now()
	for _, id := range rt.order {
		if rt.backends[id].usable(now) {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
			return
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no_ready_backend"})
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	rt.inc("requests.stats")
	writeJSON(w, http.StatusOK, rt.Stats())
}

// readBody slurps the request body under the size bound.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "payload_too_large",
				fmt.Sprintf("request body exceeds %d bytes", maxBodyBytes), 0)
		} else {
			writeError(w, http.StatusBadRequest, "bad_request", "unreadable request body", 0)
		}
		return nil, false
	}
	return body, true
}

// writeForwardError maps a forward failure onto the taxonomy. Everything
// that gets here is retryable from the client's point of view: the request
// itself was never judged (4xx verdicts relay instead of erroring).
func (rt *Router) writeForwardError(w http.ResponseWriter, root *trace.Span, err error) {
	if root != nil {
		root.SetAttr("error", err.Error())
	}
	rt.inc("forward.exhausted")
	writeError(w, http.StatusServiceUnavailable, "no_ready_backend",
		fmt.Sprintf("no ring replica could serve this request: %v", err), 1)
}

func relayBuffered(w http.ResponseWriter, br *bufferedResp) {
	copyRelayHeaders(w, br.header)
	w.Header().Set(BackendHeader, br.backend)
	w.WriteHeader(br.status)
	_, _ = w.Write(br.body)
}

func copyRelayHeaders(w http.ResponseWriter, from http.Header) {
	for _, h := range relayHeaders {
		if v := from.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
}

// flushCopy streams src to the client, flushing per chunk so NDJSON items
// arrive as the backend emits them.
func flushCopy(w http.ResponseWriter, src io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
