package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	stdnet "net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"testing"
	"time"

	"merlin/internal/qos"
	"merlin/internal/service"
)

// TestClusterChaos is the router's acceptance drill: three real merlind
// processes (this test binary re-exec'd, each with its own durable journal)
// behind an in-process router, under concurrent multi-tenant load, while
// one backend is SIGKILLed mid-storm and later restarted at the same
// address with the same journal. The drill asserts the fleet degrades
// truthfully, not silently:
//
//   - every request the router accepts gets a correct (possibly degraded)
//     response or a truthful retryable error (429 with Retry-After, 503
//     no_ready_backend) — never a hang, a bare 500, or a bogus verdict;
//   - the victim's breaker is observed opening and then half-open-
//     recovering via /v1/stats;
//   - zero acknowledged jobs are lost: every 202-acked job reaches "done"
//     after the victim restarts and replays its WAL — a poll while the
//     owner is down says 503 retry, never 404 lost.
func TestClusterChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess cluster drill; skipped in -short")
	}

	// --- Boot three durable backends at pre-reserved addresses (the victim
	// must restart at the SAME URL so the ring never changes). ---
	const nBackends = 3
	addrs := make([]string, nBackends)
	dirs := make([]string, nBackends)
	for i := range addrs {
		ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
		dirs[i] = t.TempDir()
	}
	children := make([]*exec.Cmd, nBackends)
	for i := range children {
		children[i] = startClusterChild(t, addrs[i], dirs[i])
	}
	defer func() {
		for _, c := range children {
			if c != nil && c.Process != nil {
				_ = c.Process.Kill()
				_ = c.Wait()
			}
		}
	}()
	backends := make([]string, nBackends)
	for i, a := range addrs {
		backends[i] = "http://" + a
		waitClusterReady(t, backends[i], 30*time.Second)
	}

	// --- Router in front, tuned for a fast drill: tight probes, quick
	// ejection, moderate per-tenant QoS. ---
	rt, err := New(Config{
		Backends:         backends,
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     time.Second,
		FailureThreshold: 3,
		EjectBase:        100 * time.Millisecond,
		EjectMax:         500 * time.Millisecond,
		MaxAttempts:      3,
		QoS:              qos.Config{Rate: 300, Burst: 600, MaxConcurrent: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	hc := &http.Client{Timeout: 30 * time.Second}

	// --- The storm: concurrent tenants posting routes and submitting jobs
	// through the router for the whole drill. Every outcome is recorded and
	// judged at the end. ---
	type outcome struct {
		path   string
		status int
		code   string // ErrorBody.Code for non-2xx
	}
	var (
		outMu    sync.Mutex
		outcomes []outcome
		acked    []string // job IDs the router acknowledged (202/200 + id)
	)
	record := func(o outcome) {
		outMu.Lock()
		outcomes = append(outcomes, o)
		outMu.Unlock()
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	tenants := []string{"acme", "initech", "hooli", ""}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				seed := int64(g*10000 + i)
				path := "/v1/route"
				if i%3 == 0 {
					path = "/v1/jobs"
				}
				body := clusterRouteBody(seed)
				req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set("Content-Type", "application/json")
				if tn := tenants[g%len(tenants)]; tn != "" {
					req.Header.Set(service.TenantHeader, tn)
				}
				resp, err := hc.Do(req)
				if err != nil {
					// The router itself must never drop a connection.
					t.Errorf("router dropped %s: %v", path, err)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				o := outcome{path: path, status: resp.StatusCode}
				if resp.StatusCode >= 400 {
					var eb service.ErrorBody
					_ = json.Unmarshal(raw, &eb)
					o.code = eb.Code
				} else if path == "/v1/jobs" {
					var st service.JobStatus
					if json.Unmarshal(raw, &st) == nil && st.ID != "" {
						outMu.Lock()
						acked = append(acked, st.ID)
						outMu.Unlock()
					}
				}
				record(o)
				time.Sleep(5 * time.Millisecond)
			}
		}(g)
	}

	statsURL := ts.URL + "/v1/stats"
	victim := backends[0]
	waitStats := func(what string, within time.Duration, pred func(Stats) bool) {
		t.Helper()
		deadline := time.Now().Add(within)
		for {
			resp, err := hc.Get(statsURL)
			if err != nil {
				t.Fatalf("stats: %v", err)
			}
			var st Stats
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("stats decode: %v", err)
			}
			if pred(st) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; victim stats: %+v", what, st.Backends[victim])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Let the fleet take some healthy load first.
	time.Sleep(400 * time.Millisecond)

	// --- SIGKILL one backend mid-storm. Its breaker must open. ---
	if err := children[0].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = children[0].Wait()
	children[0] = nil
	waitStats("victim breaker to open", 20*time.Second, func(st Stats) bool {
		return st.Backends[victim].Opens >= 1
	})

	// Keep storming against the two survivors.
	time.Sleep(400 * time.Millisecond)

	// --- Restart the victim at the same address over the same journal: the
	// breaker must pass through half-open and close (Recovers counts only
	// half-open → closed transitions), and the WAL must re-run its jobs. ---
	children[0] = startClusterChild(t, addrs[0], dirs[0])
	waitStats("victim breaker to recover via half-open", 30*time.Second, func(st Stats) bool {
		b := st.Backends[victim]
		return b.Recovers >= 1 && b.State == "closed" && !b.Drained
	})

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	// --- Judge every outcome: correct answers or truthful retryable errors,
	// nothing else. ---
	counts := map[string]int{}
	for _, o := range outcomes {
		key := fmt.Sprintf("%s %d %s", o.path, o.status, o.code)
		counts[key]++
		switch {
		case o.status == http.StatusOK || o.status == http.StatusAccepted:
		case o.status == http.StatusTooManyRequests:
			if o.code != "tenant_rate_limited" && o.code != "tenant_concurrency" && o.code != "queue_full" {
				t.Errorf("429 with untruthful code %q", o.code)
			}
		case o.status == http.StatusServiceUnavailable:
			if o.code == "" {
				t.Errorf("503 without an error code is not a truthful retryable error")
			}
		default:
			t.Errorf("outcome %s: neither a correct response nor a truthful retryable error", key)
		}
	}
	t.Logf("storm outcomes: %v", counts)
	if len(outcomes) == 0 {
		t.Fatal("storm recorded no outcomes")
	}

	// --- Zero lost acknowledged jobs: every acked ID reaches done through
	// the router. While the owner was briefly down a poll may say 503
	// (retryable); it must never say 404 (lost). ---
	if len(acked) == 0 {
		t.Fatal("storm acknowledged no jobs; drill proves nothing")
	}
	deadline := time.Now().Add(90 * time.Second)
	for _, id := range acked {
		for {
			resp, err := hc.Get(ts.URL + "/v1/jobs/" + id)
			if err != nil {
				t.Fatalf("poll %s: %v", id, err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusNotFound {
				t.Fatalf("acknowledged job %s polled as 404: an acked job was lost", id)
			}
			if resp.StatusCode == http.StatusOK {
				var st service.JobStatus
				if err := json.Unmarshal(raw, &st); err != nil {
					t.Fatalf("poll %s: %v (%s)", id, err, raw)
				}
				if st.State == string(service.JobDone) {
					break
				}
				if service.JobState(st.State).Terminal() {
					t.Fatalf("acknowledged job %s ended %s (%s %s), want done", id, st.State, st.Code, st.Error)
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("acknowledged job %s never reached done", id)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	t.Logf("all %d acknowledged jobs reached done across the kill/restart", len(acked))
}

// clusterRouteBody builds a small deterministic routing problem.
func clusterRouteBody(seed int64) []byte {
	n := struct {
		Name   string `json:"name"`
		Source struct {
			X int64 `json:"x"`
			Y int64 `json:"y"`
		} `json:"source"`
		Sinks []map[string]any `json:"sinks"`
	}{Name: fmt.Sprintf("chaos-%d", seed)}
	for s := int64(0); s < 3; s++ {
		n.Sinks = append(n.Sinks, map[string]any{
			"pos":  map[string]int64{"x": (seed%97 + 1) * (s + 1) * 40, "y": (seed%89 + 1) * (s + 2) * 30},
			"load": 0.05,
			"req":  1.5,
		})
	}
	body, _ := json.Marshal(map[string]any{"net": n})
	return body
}

// startClusterChild re-execs this test binary as one durable merlind
// backend serving at addr over journal dir.
func startClusterChild(t *testing.T, addr, dir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestClusterChaosChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		"MERLIN_CLUSTER_CHILD=1",
		"MERLIN_CLUSTER_ADDR="+addr,
		"MERLIN_CLUSTER_DIR="+dir,
		// A per-job delay keeps a queue of acknowledged-but-unfinished work
		// behind the worker, so the SIGKILL provably lands on acked jobs.
		"MERLIN_FAULTS=service.worker=delay:50ms",
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// TestClusterChaosChild is the re-exec'd backend: a durable merlind server
// at a fixed address. A no-op unless MERLIN_CLUSTER_CHILD gates it in.
func TestClusterChaosChild(t *testing.T) {
	if os.Getenv("MERLIN_CLUSTER_CHILD") == "" {
		t.Skip("cluster-chaos child; only runs re-exec'd")
	}
	s, err := service.NewDurable(service.Config{
		Workers:    2,
		JournalDir: os.Getenv("MERLIN_CLUSTER_DIR"),
	})
	if err != nil {
		t.Fatalf("child boot: %v", err)
	}
	ln, err := stdnet.Listen("tcp", os.Getenv("MERLIN_CLUSTER_ADDR"))
	if err != nil {
		t.Fatalf("child bind: %v", err)
	}
	// Serve until SIGKILL; no graceful path out.
	_ = http.Serve(ln, s.Handler())
}

// waitClusterReady polls a backend's readyz until it serves.
func waitClusterReady(t *testing.T, base string, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		resp, err := http.Get(base + "/v1/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("backend %s never became ready: %v", base, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
