package router

import (
	"testing"
	"time"

	"merlin/pkg/client"
)

func testPolicy() breakerPolicy {
	return breakerPolicy{
		threshold: 3,
		backoff:   client.NewBackoff(100*time.Millisecond, time.Second, 1),
	}
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := &backend{id: "http://a"}
	pol := testPolicy()
	now := time.Unix(1000, 0)

	for i := 0; i < 2; i++ {
		b.recordFailure(now, pol)
		if !b.admissible(now) {
			t.Fatalf("after %d failures (threshold 3): want admissible", i+1)
		}
	}
	b.recordFailure(now, pol)
	if b.admissible(now) {
		t.Fatal("after 3 consecutive failures: want ejected")
	}
	if st := b.stats(); st.State != "open" || st.Opens != 1 {
		t.Fatalf("want open/opens=1, got %s/opens=%d", st.State, st.Opens)
	}
}

func TestBreakerHalfOpenSingleTrialThenRecover(t *testing.T) {
	b := &backend{id: "http://a"}
	pol := testPolicy()
	now := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		b.recordFailure(now, pol)
	}
	// Inside the ejection window: not admissible.
	if b.admissible(now.Add(10 * time.Millisecond)) {
		t.Fatal("inside ejection timeout: want inadmissible")
	}
	// Past the window (max delay is Base*2=200ms jittered; 2s is safely past):
	// exactly one trial ticket.
	later := now.Add(2 * time.Second)
	if !b.admissible(later) {
		t.Fatal("past ejection timeout: want one half-open trial admitted")
	}
	if b.admissible(later) {
		t.Fatal("second caller during half-open trial: want inadmissible")
	}
	if st := b.stats(); st.State != "half_open" {
		t.Fatalf("want half_open, got %s", st.State)
	}
	b.recordSuccess()
	st := b.stats()
	if st.State != "closed" || st.Recovers != 1 || st.Ejections != 0 {
		t.Fatalf("after trial success: want closed/recovers=1/ejections=0, got %+v", st)
	}
	if !b.admissible(later) {
		t.Fatal("recovered breaker: want admissible")
	}
}

func TestBreakerHalfOpenFailureReopensLonger(t *testing.T) {
	b := &backend{id: "http://a"}
	pol := testPolicy()
	now := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		b.recordFailure(now, pol)
	}
	first := b.stats().Ejections // 1
	later := now.Add(2 * time.Second)
	if !b.admissible(later) {
		t.Fatal("want half-open trial")
	}
	b.recordFailure(later, pol)
	st := b.stats()
	if st.State != "open" || st.Ejections != first+1 || st.Opens != 2 {
		t.Fatalf("failed trial: want re-open with grown ejection count, got %+v", st)
	}
	// A single failure after recovery must NOT re-open (threshold resets).
	b.recordSuccess()
	b.recordFailure(later, pol)
	if got := b.stats().State; got != "closed" {
		t.Fatalf("one failure after recovery: want closed, got %s", got)
	}
}

// TestBreakerDrainOrthogonal: drained is a cooperative flag, not a breaker
// state — it blocks admission without starting any ejection clock, and
// clears instantly.
func TestBreakerDrainOrthogonal(t *testing.T) {
	b := &backend{id: "http://a"}
	now := time.Unix(1000, 0)
	b.setDrained(true)
	if b.admissible(now) {
		t.Fatal("drained: want inadmissible")
	}
	if st := b.stats(); st.State != "closed" || !st.Drained {
		t.Fatalf("drained backend: want closed+drained, got %+v", st)
	}
	b.setDrained(false)
	if !b.admissible(now) {
		t.Fatal("undrained: want admissible immediately (no ejection clock)")
	}
}

func TestBreakerUsableDoesNotConsumeTrialTicket(t *testing.T) {
	b := &backend{id: "http://a"}
	pol := testPolicy()
	now := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		b.recordFailure(now, pol)
	}
	later := now.Add(2 * time.Second)
	if !b.usable(later) {
		t.Fatal("past timeout: usable should report true")
	}
	// usable() must not have taken the ticket: admissible still gets it.
	if !b.admissible(later) {
		t.Fatal("usable consumed the half-open trial ticket")
	}
}
