package router

import (
	"fmt"
	"testing"
)

func TestRingPickDeterministicAndComplete(t *testing.T) {
	backends := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1, err := newRing(backends, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := newRing(backends, 64)
	for key := uint64(0); key < 1000; key += 37 {
		p1, p2 := r1.pick(key), r2.pick(key)
		if len(p1) != len(backends) {
			t.Fatalf("pick(%d) returned %d backends, want %d", key, len(p1), len(backends))
		}
		seen := map[string]bool{}
		for i, b := range p1 {
			if seen[b] {
				t.Fatalf("pick(%d) repeats backend %s", key, b)
			}
			seen[b] = true
			if p2[i] != b {
				t.Fatalf("pick(%d) not deterministic: %v vs %v", key, p1, p2)
			}
		}
	}
}

// TestRingBalance checks the keyspace splits roughly evenly: with 64 vnodes
// the imbalance should stay well under 2x.
func TestRingBalance(t *testing.T) {
	backends := []string{"http://a:1", "http://b:2", "http://c:3"}
	r, err := newRing(backends, 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		// spread keys over the space, not just low values
		key := uint64(i) * 0x9e3779b97f4a7c15
		counts[r.pick(key)[0]]++
	}
	for b, c := range counts {
		frac := float64(c) / n
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("backend %s owns %.1f%% of the keyspace, want ~33%%", b, frac*100)
		}
	}
}

// TestRingFailoverOrderStable: the replica list for a key never changes —
// availability filtering happens at pick time in the caller, so a backend
// coming back finds its keys (and its warm cache) exactly where it left
// them.
func TestRingFailoverOrderStable(t *testing.T) {
	r, err := newRing([]string{"http://a:1", "http://b:2", "http://c:3"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	key := uint64(123456789)
	want := fmt.Sprintf("%v", r.pick(key))
	for i := 0; i < 100; i++ {
		if got := fmt.Sprintf("%v", r.pick(key)); got != want {
			t.Fatalf("pick order changed: %s vs %s", got, want)
		}
	}
}

func TestRingRejectsBadConfig(t *testing.T) {
	if _, err := newRing(nil, 64); err == nil {
		t.Error("empty backend list: want error")
	}
	if _, err := newRing([]string{"http://a", "http://a"}, 64); err == nil {
		t.Error("duplicate backend: want error")
	}
	if _, err := newRing([]string{"http://a", ""}, 64); err == nil {
		t.Error("empty backend URL: want error")
	}
}
