package router

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring with virtual nodes. Each backend is hashed
// onto the ring at `replicas` points ("backend#0", "backend#1", ...); a key
// lands at the first vnode clockwise from its hash and its replica set is
// the distinct backends encountered walking on from there.
//
// MERLIN's semi-order-independence is what makes this sound: the canonical
// net fingerprint (internal/net/canon.go) is invariant under sink
// presentation order, so the same routing problem always hashes to the same
// arc of the ring — the backend that computed it holds it in cache, and a
// re-submitted problem finds that cache without any shared state between
// routers.
//
// The ring is immutable after construction. Availability is deliberately
// NOT part of the ring: a dead or draining backend is skipped by the caller
// at pick time, so the hash space never moves — when the backend comes
// back, its keys come back to it (and to its still-warm cache), instead of
// resharding the fleet twice.
type ring struct {
	points   []ringPoint // sorted by hash
	backends []string    // distinct backend IDs, construction order
}

type ringPoint struct {
	hash uint64
	idx  int // index into backends
}

// newRing builds the ring. replicas is the vnode count per backend; 64 is
// plenty for single-digit fleets (keyspace imbalance ~ 1/sqrt(replicas)).
func newRing(backends []string, replicas int) (*ring, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("router: ring needs at least one backend")
	}
	if replicas <= 0 {
		replicas = 64
	}
	seen := map[string]bool{}
	r := &ring{}
	for _, b := range backends {
		if b == "" {
			return nil, fmt.Errorf("router: empty backend URL")
		}
		if seen[b] {
			return nil, fmt.Errorf("router: duplicate backend %q", b)
		}
		seen[b] = true
		idx := len(r.backends)
		r.backends = append(r.backends, b)
		for v := 0; v < replicas; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", b, v)
			r.points = append(r.points, ringPoint{hash: h.Sum64(), idx: idx})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].idx < r.points[j].idx
	})
	return r, nil
}

// Ring exposes the consistent-hash ring to layers below the router.
// cmd/merlind builds one over the same backend URLs and vnode count as the
// routers and injects it into the journal replicator as its placement
// function — every node then computes the same replica set for a key with
// no coordination, and the dependency arrow keeps pointing router→service,
// never back.
type Ring struct{ r *ring }

// NewRing builds an exported ring; replicas ≤ 0 takes the default 64.
func NewRing(backends []string, replicas int) (*Ring, error) {
	r, err := newRing(backends, replicas)
	if err != nil {
		return nil, err
	}
	return &Ring{r: r}, nil
}

// Pick returns the distinct-backend preference order for a hashed key.
func (r *Ring) Pick(key uint64) []string { return r.r.pick(key) }

// PickString places a string key (e.g. a result-store key): sha256-hashed
// to a ring position the same way shardKey hashes canon bytes, then walked
// clockwise. Element 0 is the key's home, the rest its replica order.
func (r *Ring) PickString(key string) []string {
	sum := sha256.Sum256([]byte(key))
	return r.r.pick(binary.BigEndian.Uint64(sum[:8]))
}

// Backends lists the ring's distinct backends in construction order.
func (r *Ring) Backends() []string { return append([]string(nil), r.r.backends...) }

// pick returns every distinct backend in ring order starting at the key's
// position: element 0 is the key's home, element 1 the first failover
// replica, and so on. The caller filters for availability — keeping the
// full ordered list here means "skip the dead one" never changes where the
// live ones sit.
func (r *ring) pick(key uint64) []string {
	out := make([]string, 0, len(r.backends))
	taken := make([]bool, len(r.backends))
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for i := 0; i < len(r.points) && len(out) < len(r.backends); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !taken[p.idx] {
			taken[p.idx] = true
			out = append(out, r.backends[p.idx])
		}
	}
	return out
}
