package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	gonet "net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"merlin/internal/net"
	"merlin/internal/qos"
	"merlin/internal/service"
)

// stubBackend is a scriptable merlind stand-in: the router only needs HTTP
// semantics, not real routing.
type stubBackend struct {
	*httptest.Server
	routeStatus atomic.Int32 // status for POST /v1/route (0 = 200)
	readyStatus atomic.Int32 // status for GET /v1/readyz (0 = 200)
	routeDelay  atomic.Int64 // nanoseconds to sleep before answering /v1/route
	hits        atomic.Int64 // /v1/route requests served
	lastBody    atomic.Value // []byte, last /v1/route body
}

func newStubBackend(t *testing.T) *stubBackend {
	t.Helper()
	sb := &stubBackend{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/route", func(w http.ResponseWriter, r *http.Request) {
		sb.hits.Add(1)
		body := make([]byte, 0)
		buf := bytes.Buffer{}
		_, _ = buf.ReadFrom(r.Body)
		body = buf.Bytes()
		sb.lastBody.Store(body)
		if d := sb.routeDelay.Load(); d > 0 {
			select {
			case <-time.After(time.Duration(d)):
			case <-r.Context().Done():
				return
			}
		}
		st := int(sb.routeStatus.Load())
		if st == 0 {
			st = http.StatusOK
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(st)
		fmt.Fprintf(w, `{"net":"stub","status":%d}`, st)
	})
	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		st := int(sb.readyStatus.Load())
		if st == 0 {
			st = http.StatusOK
		}
		w.WriteHeader(st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"no such job","code":"not_found"}`, http.StatusNotFound)
	})
	sb.Server = httptest.NewServer(mux)
	t.Cleanup(sb.Close)
	return sb
}

// deadURL reserves a port, closes it, and returns its URL: connections are
// refused immediately.
func deadURL(t *testing.T) string {
	t.Helper()
	l, err := gonet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return "http://" + addr
}

// newTestRouter builds a router with probing disabled (tests drive breaker
// state through request traffic) and QoS disabled unless the config says
// otherwise.
func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1
	}
	if cfg.QoS.Rate == 0 && cfg.QoS.MaxConcurrent == 0 {
		cfg.QoS = qos.Config{Rate: -1, MaxConcurrent: -1}
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// routeBody marshals a RouteRequest for the named synthetic net.
func routeBody(t *testing.T, seed int64, flow string) []byte {
	t.Helper()
	n := &net.Net{Name: fmt.Sprintf("t%d", seed)}
	n.Sinks = []net.Sink{{Load: 0.05, Req: 1.0}}
	n.Sinks[0].Pos.X = seed * 100
	n.Sinks[0].Pos.Y = seed * 70
	body, err := json.Marshal(service.RouteRequest{Net: n, Flow: flow})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// bodyHomedAt searches seeds until the request's ring home is the wanted
// backend — tests that need "the home replica is the broken one" use this.
func bodyHomedAt(t *testing.T, rt *Router, home string, flow string) []byte {
	t.Helper()
	for seed := int64(1); seed < 10000; seed++ {
		body := routeBody(t, seed, flow)
		key, _ := shardKey("/v1/route", body)
		if rt.ring.pick(key)[0] == home {
			return body
		}
	}
	t.Fatal("no seed homes at the wanted backend")
	return nil
}

func postRoute(t *testing.T, h http.Handler, body []byte, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/route", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestShardAffinity: the same request body lands on the same backend every
// time — the consistent-hash contract cache locality depends on.
func TestShardAffinity(t *testing.T) {
	a, b := newStubBackend(t), newStubBackend(t)
	rt := newTestRouter(t, Config{Backends: []string{a.URL, b.URL}})
	h := rt.Handler()

	body := routeBody(t, 7, "")
	first := postRoute(t, h, body, nil)
	if first.Code != http.StatusOK {
		t.Fatalf("status %d: %s", first.Code, first.Body)
	}
	home := first.Header().Get(BackendHeader)
	if home == "" {
		t.Fatal("no X-Merlin-Backend header")
	}
	for i := 0; i < 5; i++ {
		rec := postRoute(t, h, body, nil)
		if got := rec.Header().Get(BackendHeader); got != home {
			t.Fatalf("request %d moved from %s to %s", i, home, got)
		}
	}
}

// TestFailoverOnConnectionError: the home replica is unreachable; the
// request lands on the next replica and the client sees a clean 200.
func TestFailoverOnConnectionError(t *testing.T) {
	dead := deadURL(t)
	live := newStubBackend(t)
	rt := newTestRouter(t, Config{Backends: []string{dead, live.URL}})
	h := rt.Handler()

	body := bodyHomedAt(t, rt, dead, "")
	rec := postRoute(t, h, body, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get(BackendHeader); got != live.URL {
		t.Fatalf("served by %s, want failover to %s", got, live.URL)
	}
	st := rt.Stats()
	if st.Backends[dead].Failures == 0 {
		t.Error("dead backend: want breaker failure recorded")
	}
	if st.Counters["forward.failovers"] == 0 {
		t.Error("want forward.failovers counter incremented")
	}
}

// Test4xxRelaysWithoutFailover: a 4xx is a verdict about the request; the
// router must relay it and never burn a failover attempt on it.
func Test4xxRelaysWithoutFailover(t *testing.T) {
	a, b := newStubBackend(t), newStubBackend(t)
	rt := newTestRouter(t, Config{Backends: []string{a.URL, b.URL}})
	h := rt.Handler()

	body := bodyHomedAt(t, rt, a.URL, "")
	a.routeStatus.Store(http.StatusBadRequest)
	rec := postRoute(t, h, body, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want the backend's 400 relayed", rec.Code)
	}
	if b.hits.Load() != 0 {
		t.Fatal("4xx must not fail over to the next replica")
	}
	st := rt.Stats()
	if st.Backends[a.URL].Failures != 0 {
		t.Error("4xx must not count as a breaker failure")
	}
}

// Test503DrainsAndFailsOver: a backend answering 503 is draining — the
// request moves on, the backend is marked drained (not broken), and
// subsequent requests skip it without an ejection clock.
func Test503DrainsAndFailsOver(t *testing.T) {
	a, b := newStubBackend(t), newStubBackend(t)
	rt := newTestRouter(t, Config{Backends: []string{a.URL, b.URL}})
	h := rt.Handler()

	body := bodyHomedAt(t, rt, a.URL, "")
	a.routeStatus.Store(http.StatusServiceUnavailable)
	rec := postRoute(t, h, body, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get(BackendHeader); got != b.URL {
		t.Fatalf("served by %s, want %s", got, b.URL)
	}
	st := rt.Stats()
	abs := st.Backends[a.URL]
	if !abs.Drained {
		t.Error("503 backend: want drained=true")
	}
	if abs.State != "closed" || abs.Failures != 0 {
		t.Errorf("draining is cooperative, not a breaker failure: got %+v", abs)
	}
	// Next request skips the drained home without contacting it.
	hitsBefore := a.hits.Load()
	postRoute(t, h, body, nil)
	if a.hits.Load() != hitsBefore {
		t.Error("drained backend received a request")
	}
}

// TestBreakerOpensThenRecovers walks the whole loop through real requests:
// repeated 500s open the home's breaker (requests skip it), the backend
// heals, the ejection timeout expires, a half-open trial succeeds, and the
// breaker closes with the recovery visible in stats.
func TestBreakerOpensThenRecovers(t *testing.T) {
	a, b := newStubBackend(t), newStubBackend(t)
	clk := struct {
		mu  sync.Mutex
		now time.Time
	}{now: time.Unix(1000, 0)}
	rt := newTestRouter(t, Config{
		Backends:         []string{a.URL, b.URL},
		FailureThreshold: 2,
		EjectBase:        time.Minute,
		EjectMax:         time.Minute,
		now: func() time.Time {
			clk.mu.Lock()
			defer clk.mu.Unlock()
			return clk.now
		},
	})
	h := rt.Handler()

	body := bodyHomedAt(t, rt, a.URL, "")
	a.routeStatus.Store(http.StatusInternalServerError)
	for i := 0; i < 2; i++ {
		if rec := postRoute(t, h, body, nil); rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d (replica should absorb)", i, rec.Code)
		}
	}
	st := rt.Stats()
	if got := st.Backends[a.URL].State; got != "open" {
		t.Fatalf("after %d 500s: breaker %s, want open", 2, got)
	}

	// While open, requests skip the home entirely.
	hitsBefore := a.hits.Load()
	postRoute(t, h, body, nil)
	if a.hits.Load() != hitsBefore {
		t.Error("open breaker: home still receiving requests")
	}

	// Heal the backend, let the ejection timeout lapse; the next request is
	// the half-open trial and closes the breaker.
	a.routeStatus.Store(0)
	clk.mu.Lock()
	clk.now = clk.now.Add(5 * time.Minute)
	clk.mu.Unlock()
	rec := postRoute(t, h, body, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("trial request: status %d", rec.Code)
	}
	if got := rec.Header().Get(BackendHeader); got != a.URL {
		t.Fatalf("trial served by %s, want recovered home %s", got, a.URL)
	}
	abs := rt.Stats().Backends[a.URL]
	if abs.State != "closed" || abs.Recovers != 1 {
		t.Fatalf("want closed with recovers=1, got %+v", abs)
	}
}

// TestAllBackendsDownIsTruthful503: when every replica is unreachable the
// client gets a retryable 503 no_ready_backend, not a hang or a 502 soup.
func TestAllBackendsDownIsTruthful503(t *testing.T) {
	rt := newTestRouter(t, Config{Backends: []string{deadURL(t), deadURL(t)}})
	h := rt.Handler()

	rec := postRoute(t, h, routeBody(t, 1, ""), nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	var eb service.ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatalf("unparseable error body: %v", err)
	}
	if eb.Code != "no_ready_backend" {
		t.Fatalf("code %q, want no_ready_backend", eb.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("want Retry-After on retryable 503")
	}
}

// TestQoSRateDeny: a tenant past its rate gets 429 tenant_rate_limited and
// its request never reaches a backend; other tenants are untouched.
func TestQoSRateDeny(t *testing.T) {
	a := newStubBackend(t)
	rt := newTestRouter(t, Config{
		Backends: []string{a.URL},
		QoS:      qos.Config{Rate: 0.001, Burst: 1, MaxConcurrent: -1},
	})
	h := rt.Handler()

	// Flow I is not degradable: no overdraft, straight to 429.
	body := routeBody(t, 1, "I")
	hot := map[string]string{service.TenantHeader: "hot"}
	if rec := postRoute(t, h, body, hot); rec.Code != http.StatusOK {
		t.Fatalf("first request: %d", rec.Code)
	}
	rec := postRoute(t, h, body, hot)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request: %d, want 429", rec.Code)
	}
	var eb service.ErrorBody
	_ = json.Unmarshal(rec.Body.Bytes(), &eb)
	if eb.Code != "tenant_rate_limited" {
		t.Fatalf("code %q, want tenant_rate_limited", eb.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	hits := a.hits.Load()
	// A different tenant sails through: isolation, not fleet-wide limiting.
	if rec := postRoute(t, h, body, map[string]string{service.TenantHeader: "calm"}); rec.Code != http.StatusOK {
		t.Fatalf("other tenant: %d, want 200", rec.Code)
	}
	if a.hits.Load() != hits+1 {
		t.Error("denied request leaked to the backend or calm tenant was dropped")
	}
}

// TestQoSDegradedTier: an over-rate tenant whose request is degradable gets
// forwarded with allow_degraded set instead of a 429.
func TestQoSDegradedTier(t *testing.T) {
	a := newStubBackend(t)
	rt := newTestRouter(t, Config{
		Backends: []string{a.URL},
		QoS:      qos.Config{Rate: 0.001, Burst: 1, MaxConcurrent: -1},
	})
	h := rt.Handler()

	body := routeBody(t, 1, "III")
	hot := map[string]string{service.TenantHeader: "hot"}
	if rec := postRoute(t, h, body, hot); rec.Code != http.StatusOK {
		t.Fatalf("first request: %d", rec.Code)
	}
	rec := postRoute(t, h, body, hot)
	if rec.Code != http.StatusOK {
		t.Fatalf("degradable over-rate request: %d, want 200 via overdraft", rec.Code)
	}
	var fwd service.RouteRequest
	if err := json.Unmarshal(a.lastBody.Load().([]byte), &fwd); err != nil {
		t.Fatal(err)
	}
	if !fwd.AllowDegraded {
		t.Fatal("over-rate degradable request forwarded without allow_degraded")
	}
	if rt.Stats().Counters["qos.degraded"] == 0 {
		t.Error("want qos.degraded counter incremented")
	}
}

// TestQoSConcurrencyDeny: the in-flight quota caps a tenant that holds
// connections open.
func TestQoSConcurrencyDeny(t *testing.T) {
	a := newStubBackend(t)
	a.routeDelay.Store(int64(200 * time.Millisecond))
	rt := newTestRouter(t, Config{
		Backends: []string{a.URL},
		QoS:      qos.Config{Rate: -1, MaxConcurrent: 1},
	})
	h := rt.Handler()

	body := routeBody(t, 1, "I")
	hot := map[string]string{service.TenantHeader: "hot"}
	done := make(chan int, 1)
	go func() { done <- postRoute(t, h, body, hot).Code }()
	// Wait until the first request is actually in flight at the backend.
	deadline := time.Now().Add(2 * time.Second)
	for a.hits.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never reached the backend")
		}
		time.Sleep(time.Millisecond)
	}
	rec := postRoute(t, h, body, hot)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second in-flight request: %d, want 429", rec.Code)
	}
	var eb service.ErrorBody
	_ = json.Unmarshal(rec.Body.Bytes(), &eb)
	if eb.Code != "tenant_concurrency" {
		t.Fatalf("code %q, want tenant_concurrency", eb.Code)
	}
	if got := <-done; got != http.StatusOK {
		t.Fatalf("first request: %d", got)
	}
}

// TestHedgedRead: a repeat fingerprint with a slow home gets raced against
// the next replica; the fast replica's answer wins.
func TestHedgedRead(t *testing.T) {
	a, b := newStubBackend(t), newStubBackend(t)
	rt := newTestRouter(t, Config{
		Backends:   []string{a.URL, b.URL},
		HedgeDelay: 2 * time.Millisecond,
	})
	h := rt.Handler()

	body := bodyHomedAt(t, rt, a.URL, "")
	// First request: fingerprint unseen, no hedge, home serves.
	if rec := postRoute(t, h, body, nil); rec.Header().Get(BackendHeader) != a.URL {
		t.Fatalf("first request not served by home")
	}
	// Slow the home down; the repeat triggers the hedge and the replica wins.
	a.routeDelay.Store(int64(300 * time.Millisecond))
	start := time.Now()
	rec := postRoute(t, h, body, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("hedged request: %d", rec.Code)
	}
	if got := rec.Header().Get(BackendHeader); got != b.URL {
		t.Fatalf("hedged request served by %s, want replica %s", got, b.URL)
	}
	if d := time.Since(start); d > 250*time.Millisecond {
		t.Errorf("hedged request took %v — hedge did not cut the tail", d)
	}
	c := rt.Stats().Counters
	if c["hedge.fired"] == 0 || c["hedge.first_win"] == 0 {
		t.Errorf("want hedge.fired and hedge.first_win counters, got %v", c)
	}
}

// TestJobPollUnreachableOwnerIs503: a job acknowledged by a backend that is
// now down must poll as retryable 503, never as 404 — the job is not lost,
// its owner's WAL will re-run it.
func TestJobPollUnreachableOwnerIs503(t *testing.T) {
	a, b := newStubBackend(t), newStubBackend(t)
	rt := newTestRouter(t, Config{Backends: []string{a.URL, b.URL}})
	h := rt.Handler()

	rt.rememberOwner("job-123", a.URL)
	a.Close() // owner dies holding the job

	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/job-123", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (owner down ≠ job lost); body %s", rec.Code, rec.Body)
	}
	var eb service.ErrorBody
	_ = json.Unmarshal(rec.Body.Bytes(), &eb)
	if eb.Code != "no_ready_backend" {
		t.Fatalf("code %q, want no_ready_backend", eb.Code)
	}
}

// TestJobPollScatters404: with no owner hint and no backend knowing the
// job, the honest 404 relays once every backend has been asked.
func TestJobPollScatters404(t *testing.T) {
	a, b := newStubBackend(t), newStubBackend(t)
	rt := newTestRouter(t, Config{Backends: []string{a.URL, b.URL}})
	h := rt.Handler()

	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/ghost", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want scattered 404", rec.Code)
	}
}

// TestReadyzReflectsBackendHealth: the router is ready iff at least one
// backend could take work.
func TestReadyzReflectsBackendHealth(t *testing.T) {
	a, b := newStubBackend(t), newStubBackend(t)
	rt := newTestRouter(t, Config{Backends: []string{a.URL, b.URL}})
	h := rt.Handler()

	get := func(path string) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code
	}
	if got := get("/v1/readyz"); got != http.StatusOK {
		t.Fatalf("readyz with healthy backends: %d", got)
	}
	rt.backends[a.URL].setDrained(true)
	rt.backends[b.URL].setDrained(true)
	if got := get("/v1/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz with all backends drained: %d, want 503", got)
	}
	// Liveness never flips: a router with no backends is still a process
	// worth keeping alive.
	if got := get("/v1/healthz"); got != http.StatusOK {
		t.Fatalf("healthz: %d, want 200 always", got)
	}
}

// TestProbeDrainsAndRecovers exercises the active prober against a backend
// whose readyz flips 503 and back.
func TestProbeDrainsAndRecovers(t *testing.T) {
	a := newStubBackend(t)
	rt := newTestRouter(t, Config{
		Backends:      []string{a.URL},
		ProbeInterval: 5 * time.Millisecond,
		ProbeTimeout:  time.Second,
	})

	waitFor := func(what string, pred func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !pred() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; stats: %+v", what, rt.Stats())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	a.readyStatus.Store(http.StatusServiceUnavailable)
	waitFor("probe to mark backend drained", func() bool {
		return rt.Stats().Backends[a.URL].Drained
	})
	if rt.Stats().ReadyBackends != 0 {
		t.Error("drained backend still counted ready")
	}
	a.readyStatus.Store(http.StatusOK)
	waitFor("probe to undrain backend", func() bool {
		return !rt.Stats().Backends[a.URL].Drained
	})
	if rt.Stats().Backends[a.URL].Failures != 0 {
		t.Error("drain/undrain cycle must not record breaker failures")
	}
}

// TestStatsShape sanity-checks the /v1/stats document the chaos drill and
// dashboards consume.
func TestStatsShape(t *testing.T) {
	a := newStubBackend(t)
	rt := newTestRouter(t, Config{Backends: []string{a.URL}})
	h := rt.Handler()

	postRoute(t, h, routeBody(t, 1, ""), map[string]string{service.TenantHeader: "acme"})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.RingBackends != 1 || st.ReadyBackends != 1 {
		t.Errorf("ring geometry wrong: %+v", st)
	}
	if _, ok := st.Backends[a.URL]; !ok {
		t.Error("stats missing backend row")
	}
	if _, ok := st.Tenants["acme"]; !ok {
		t.Error("stats missing tenant row")
	}
	if st.Counters["requests.route"] == 0 {
		t.Error("stats missing request counter")
	}
}
