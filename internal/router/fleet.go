package router

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"merlin/internal/gossip"
)

// fleetBrownout turns gossiped backend pressure into a fleet-wide admission
// level, so routers start degrading traffic together before any single
// backend saturates and discovers overload alone.
//
// Pressure for one backend is max(queue utilization, brownout tier
// fraction) from its freshest gossip digest; the fleet estimate is the mean
// over alive backends with fresh evidence. Suspect and dead members are
// excluded — their load is about to be rerouted onto the survivors, whose
// own digests will carry the resulting pressure within a tick or two, and
// counting ghosts would pin the level high after the storm ends.
//
// Like the per-node brownout (internal/service/brownout.go) this raises
// immediately and lowers only after a cooldown of calm samples: flapping
// admission policy is worse than a conservative one.
type fleetBrownout struct {
	highWater float64
	lowWater  float64
	cooldown  int

	level atomic.Int32

	mu       sync.Mutex
	calm     int
	pressure float64 // last sample, for stats
	counted  int     // backends in the last sample
	raised   uint64
	lowered  uint64
}

// fleetStep is how far past FleetHighWater the pressure must go for level
// 2 (standard-class shedding); level 1 starts at FleetHighWater exactly.
const fleetStep = 0.15

// fleetMaxLevel caps the ladder: 1 = degrade everything degradable + shed
// bronze overdraft, 2 = shed standard overdraft too.
const fleetMaxLevel = 2

// maxTier mirrors the backend ladder depth (full → nobubble → lttree →
// vangin): gossiped tier/maxTier is the "how far down the ladder" fraction.
const maxTier = 3

func newFleetBrownout(cfg Config) *fleetBrownout {
	return &fleetBrownout{
		highWater: cfg.FleetHighWater,
		lowWater:  cfg.FleetLowWater,
		cooldown:  cfg.FleetCooldown,
	}
}

// fleetLoop samples at the gossip cadence — pressure can't change faster
// than evidence arrives.
func (rt *Router) fleetLoop() {
	interval := rt.cfg.GossipInterval
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-rt.stopProbe:
			return
		case <-t.C:
			rt.fleetSample(interval)
		}
	}
}

// fleetSample recomputes the fleet level from the current membership view
// and publishes it to the QoS controller.
func (rt *Router) fleetSample(interval time.Duration) {
	members := rt.gossip.Members()
	var sum float64
	var n int
	for _, m := range members {
		if m.Digest.Role != gossip.RoleBackend || m.Digest.State != gossip.Alive {
			continue
		}
		if m.Age > 4*interval {
			continue // stale enough that the sweep is about to suspect it
		}
		p := math.Max(m.Digest.QueueUtil, float64(m.Digest.Tier)/maxTier)
		sum += math.Min(p, 1)
		n++
	}
	var pressure float64
	if n > 0 {
		pressure = sum / float64(n)
	}

	f := rt.fleet
	f.mu.Lock()
	f.pressure, f.counted = pressure, n
	level := f.level.Load()
	want := level
	switch {
	case pressure >= f.highWater+fleetStep:
		want = fleetMaxLevel
	case pressure >= f.highWater:
		if want < 1 {
			want = 1
		}
	}
	if want > level {
		// Raise immediately — waiting out a cooldown while the fleet
		// saturates is how queues overflow.
		f.level.Store(want)
		f.calm = 0
		f.raised += uint64(want - level)
		rt.inc("fleet.raised")
	} else if level > 0 && pressure < f.lowWater {
		f.calm++
		if f.calm >= f.cooldown {
			f.level.Store(level - 1)
			f.calm = 0
			f.lowered++
			rt.inc("fleet.lowered")
		}
	} else {
		f.calm = 0
	}
	f.mu.Unlock()

	rt.adm.SetFleetLevel(f.level.Load())
}

// fleetLevel is the current fleet brownout level (0 when disabled).
func (rt *Router) fleetLevel() int32 {
	if rt.fleet == nil {
		return 0
	}
	return rt.fleet.level.Load()
}

// FleetStats is the fleet-brownout section of /v1/stats.
type FleetStats struct {
	Level     int32   `json:"level"`
	Pressure  float64 `json:"pressure"`
	Backends  int     `json:"backends"` // backends counted into the estimate
	HighWater float64 `json:"high_water"`
	LowWater  float64 `json:"low_water"`
	Raised    uint64  `json:"raised"`
	Lowered   uint64  `json:"lowered"`
}

func (f *fleetBrownout) stats() FleetStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FleetStats{
		Level:     f.level.Load(),
		Pressure:  f.pressure,
		Backends:  f.counted,
		HighWater: f.highWater,
		LowWater:  f.lowWater,
		Raised:    f.raised,
		Lowered:   f.lowered,
	}
}
