package router

import (
	"testing"
	"time"

	"merlin/internal/gossip"
)

// TestProbePhaseJitter pins the probe-clock desynchronization: phases are
// deterministic per (seed, backend) — restarts don't reshuffle cadence —
// distinct across backends, distinct across routers (seeds), and always
// inside [0, ProbeInterval).
func TestProbePhaseJitter(t *testing.T) {
	// An hour-long interval keeps every probe clock waiting out its phase
	// for the duration of the test — no probe traffic, pure arithmetic.
	backends := []string{deadURL(t), deadURL(t), deadURL(t)}
	rt1 := newTestRouter(t, Config{Backends: backends, Seed: 1, ProbeInterval: time.Hour})
	rt2 := newTestRouter(t, Config{Backends: backends, Seed: 2, ProbeInterval: time.Hour})

	interval := rt1.cfg.ProbeInterval
	seen := map[time.Duration]bool{}
	for _, b := range backends {
		p := rt1.probePhase(b)
		if p < 0 || p >= interval {
			t.Fatalf("phase %v outside [0, %v)", p, interval)
		}
		if p != rt1.probePhase(b) {
			t.Fatalf("phase for %s not deterministic", b)
		}
		if seen[p] {
			t.Fatalf("two backends share phase %v; the herd is back", p)
		}
		seen[p] = true
		if p == rt2.probePhase(b) {
			t.Fatalf("routers with different seeds share phase %v for %s", p, b)
		}
	}
}

// seedGossip installs a digest about one backend into the router's gossip
// node as if it had just merged it off the wire.
func seedGossip(t *testing.T, rt *Router, d gossip.Digest) {
	t.Helper()
	if err := rt.gossip.Merge(t.Context(), gossip.EncodePacket([]gossip.Digest{d})); err != nil {
		t.Fatal(err)
	}
}

// TestGossipRelaxesProbing pins the back-off policy: only fresh gossip
// unanimously agreeing with the local view (alive, ready, breaker closed,
// undrained) defers probes; any disagreement restores full cadence, and a
// fresh alive-but-not-ready digest proactively drains the backend locally.
func TestGossipRelaxesProbing(t *testing.T) {
	target := deadURL(t)
	rt := newTestRouter(t, Config{
		Backends:      []string{target},
		GossipSelf:    "http://router-under-test",
		ProbeInterval: time.Hour, // see TestProbePhaseJitter: no probe fires
	})
	b := rt.backends[target]

	// No evidence at all: full cadence.
	if rt.gossipRelaxes(b) {
		t.Fatal("relaxed with no gossip evidence")
	}

	// Fresh agreeing evidence: relax.
	seedGossip(t, rt, gossip.Digest{
		Node: target, Incarnation: 1, Seq: 1,
		State: gossip.Alive, Role: gossip.RoleBackend, Ready: true,
	})
	if !rt.gossipRelaxes(b) {
		t.Fatal("fresh agreeing evidence did not relax probing")
	}

	// Local disagreement (drained backend): full cadence despite good gossip.
	b.setDrained(true)
	if rt.gossipRelaxes(b) {
		t.Fatal("relaxed while the local view disagrees (drained)")
	}
	b.setDrained(false)

	// Fresh evidence of trouble: never relax, and a not-ready digest is
	// relayed into the local drain flag.
	seedGossip(t, rt, gossip.Digest{
		Node: target, Incarnation: 1, Seq: 2,
		State: gossip.Alive, Role: gossip.RoleBackend, Ready: false, Reason: "draining",
	})
	if rt.gossipRelaxes(b) {
		t.Fatal("relaxed on a not-ready digest")
	}
	b.mu.Lock()
	drained := b.drained
	b.mu.Unlock()
	if !drained {
		t.Fatal("fresh not-ready digest was not relayed into the local drain flag")
	}
	if rt.counters()["gossip.drain_relay"] == 0 {
		t.Error("drain relay not counted")
	}

	// Suspect members never defer probes.
	seedGossip(t, rt, gossip.Digest{
		Node: target, Incarnation: 1, Seq: 3,
		State: gossip.Suspect, Role: gossip.RoleBackend, Ready: true,
	})
	b.setDrained(false)
	if rt.gossipRelaxes(b) {
		t.Fatal("relaxed on a suspect member")
	}
}

// TestFleetBrownoutLevels drives the fleet estimator directly with merged
// digests: pressure above high water raises immediately, recovery needs the
// cooldown, and dead members drop out of the estimate.
func TestFleetBrownoutLevels(t *testing.T) {
	rt := newTestRouter(t, Config{
		Backends:      []string{deadURL(t), deadURL(t)},
		GossipSelf:    "http://router-under-test",
		FleetBrownout: true,
		FleetCooldown: 2,
	})
	interval := 200 * time.Millisecond

	calm := func(node string, seq uint64) gossip.Digest {
		return gossip.Digest{Node: node, Incarnation: 1, Seq: seq,
			State: gossip.Alive, Role: gossip.RoleBackend, Ready: true, QueueUtil: 0.1}
	}
	hot := func(node string, seq uint64) gossip.Digest {
		return gossip.Digest{Node: node, Incarnation: 1, Seq: seq,
			State: gossip.Alive, Role: gossip.RoleBackend, Ready: true, QueueUtil: 0.95, Tier: 2}
	}

	seedGossip(t, rt, calm("b1", 1))
	seedGossip(t, rt, calm("b2", 1))
	rt.fleetSample(interval)
	if got := rt.fleetLevel(); got != 0 {
		t.Fatalf("calm fleet at level %d", got)
	}

	// One hot backend of two: mean pressure ~0.53, below the 0.7 default.
	seedGossip(t, rt, hot("b1", 2))
	rt.fleetSample(interval)
	if got := rt.fleetLevel(); got != 0 {
		t.Fatalf("half-hot fleet at level %d, want 0", got)
	}

	// Both hot: raise immediately, straight past level 1 to 2 (≥ 0.85).
	seedGossip(t, rt, hot("b2", 2))
	rt.fleetSample(interval)
	if got := rt.fleetLevel(); got != 2 {
		t.Fatalf("saturated fleet at level %d, want 2", got)
	}

	// Router digests must not dilute the estimate.
	seedGossip(t, rt, gossip.Digest{Node: "r2", Incarnation: 1, Seq: 1,
		State: gossip.Alive, Role: gossip.RoleRouter, Ready: true, QueueUtil: 0})
	rt.fleetSample(interval)
	if got := rt.fleetLevel(); got != 2 {
		t.Fatalf("an idle router digest lowered the fleet level to %d", got)
	}

	// Recovery: calm samples lower one level per cooldown, not instantly.
	seedGossip(t, rt, calm("b1", 3))
	seedGossip(t, rt, calm("b2", 3))
	rt.fleetSample(interval)
	if got := rt.fleetLevel(); got != 2 {
		t.Fatalf("level dropped without cooldown: %d", got)
	}
	rt.fleetSample(interval)
	if got := rt.fleetLevel(); got != 1 {
		t.Fatalf("level after first cooldown = %d, want 1", got)
	}
	rt.fleetSample(interval)
	rt.fleetSample(interval)
	if got := rt.fleetLevel(); got != 0 {
		t.Fatalf("level after second cooldown = %d, want 0", got)
	}
}
