package router

import (
	"sync"
	"time"

	"merlin/pkg/client"
)

// breakerState is one backend's circuit-breaker position.
type breakerState int

const (
	// stateClosed: healthy; requests flow.
	stateClosed breakerState = iota
	// stateOpen: ejected; requests skip this backend until openUntil.
	stateOpen
	// stateHalfOpen: the ejection timeout expired and exactly one trial
	// request (or probe) is allowed through; success closes the breaker,
	// failure re-opens it with a longer timeout.
	stateHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case stateClosed:
		return "closed"
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half_open"
	}
	return "unknown"
}

// backend is one ring member's live state: circuit breaker, drain flag, and
// counters. The breaker and the drain flag are deliberately separate
// dimensions — the breaker answers "is it failing?" (connection errors,
// 5xx) with exponential ejection, while drained answers "did it ask us to
// stop?" (readyz 503). A draining backend is healthy; it gets no new work
// but also no ejection clock, so the instant readyz flips back it serves
// again.
type backend struct {
	id string // base URL

	mu        sync.Mutex
	state     breakerState
	fails     int       // consecutive failures while closed
	ejections int       // consecutive opens; exponent for the ejection timeout
	openUntil time.Time // when open, the half-open trial time
	trialing  bool      // half-open: one trial in flight
	drained   bool      // readyz said 503; not a breaker state

	// counters (under mu; snapshot via stats)
	forwards  uint64 // proxy attempts sent
	failures  uint64 // breaker-visible failures (conn error / 5xx)
	opens     uint64 // closed/half-open → open transitions
	recovers  uint64 // half-open → closed transitions
	probeFail uint64 // failed readyz probes
}

// breakerPolicy tunes the state machine.
type breakerPolicy struct {
	// threshold is how many consecutive failures open a closed breaker.
	threshold int
	// backoff maps the consecutive-ejection count to the open duration —
	// the same exponential machinery pkg/client retries with (satisfying
	// one definition of "how fast do we come back" repo-wide).
	backoff *client.Backoff
}

// admissible reports whether a request (or probe) may be sent to this
// backend right now, transitioning open → half-open when the ejection
// timeout has expired. In half-open, only one caller at a time is admitted;
// the bool result is the admission ticket and MUST be followed by exactly
// one recordSuccess/recordFailure (which clears the trial slot).
func (b *backend) admissible(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.drained {
		return false
	}
	switch b.state {
	case stateClosed:
		return true
	case stateOpen:
		if now.Before(b.openUntil) {
			return false
		}
		b.state = stateHalfOpen
		b.trialing = true
		return true
	case stateHalfOpen:
		if b.trialing {
			return false
		}
		b.trialing = true
		return true
	}
	return false
}

// recordSuccess reports a successful forward or probe: half-open closes
// (recovery), consecutive-failure and ejection counters reset.
func (b *backend) recordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == stateHalfOpen {
		b.recovers++
	}
	b.state = stateClosed
	b.fails = 0
	b.ejections = 0
	b.trialing = false
}

// recordFailure reports a breaker-visible failure (connection error or
// backend 5xx): a half-open trial re-opens immediately with a longer
// timeout; a closed breaker opens after `threshold` consecutive failures.
func (b *backend) recordFailure(now time.Time, pol breakerPolicy) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	b.trialing = false
	switch b.state {
	case stateHalfOpen:
		b.openLocked(now, pol)
	case stateClosed:
		b.fails++
		if b.fails >= pol.threshold {
			b.openLocked(now, pol)
		}
	case stateOpen:
		// Failures while already open (late probe results) extend nothing:
		// the ejection clock is set at open time.
	}
}

// openLocked transitions to open with an exponentially growing timeout.
// Callers hold b.mu.
func (b *backend) openLocked(now time.Time, pol breakerPolicy) {
	b.state = stateOpen
	b.fails = 0
	b.opens++
	b.openUntil = now.Add(pol.backoff.Delay(b.ejections, 0))
	b.ejections++
}

// setDrained records the readyz verdict. An HTTP answer of any kind means
// the process is reachable, so the caller also records breaker success
// separately; this only moves the drain flag.
func (b *backend) setDrained(v bool) {
	b.mu.Lock()
	b.drained = v
	b.mu.Unlock()
}

// BackendStats is one backend's /v1/stats row.
type BackendStats struct {
	State      string `json:"state"` // closed | open | half_open
	Drained    bool   `json:"drained"`
	Forwards   uint64 `json:"forwards"`
	Failures   uint64 `json:"failures"`
	Opens      uint64 `json:"opens"`
	Recovers   uint64 `json:"recovers"`
	ProbeFails uint64 `json:"probe_fails"`
	Ejections  int    `json:"consecutive_ejections"`
}

func (b *backend) stats() BackendStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BackendStats{
		State:      b.state.String(),
		Drained:    b.drained,
		Forwards:   b.forwards,
		Failures:   b.failures,
		Opens:      b.opens,
		Recovers:   b.recovers,
		ProbeFails: b.probeFail,
		Ejections:  b.ejections,
	}
}
