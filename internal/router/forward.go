package router

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"merlin/internal/faultinject"
	"merlin/internal/trace"
)

// maxRelayBytes bounds how much of a backend response the router will
// buffer for the non-streaming paths; backend responses are JSON documents
// well under this.
const maxRelayBytes = 64 << 20

// Failover classification errors. Anything else coming out of an attempt is
// a relayable response.
var (
	// errConn: the backend could not be reached (or faultinject said so);
	// breaker failure, fail over immediately.
	errConn = errors.New("router: backend connection failure")
	// errUpstream: the backend answered a non-503 5xx; breaker failure,
	// fail over.
	errUpstream = errors.New("router: backend 5xx")
	// errDrained: the backend answered 503 — it is alive but refusing new
	// work (draining, durability-degraded, overloaded); not a breaker
	// failure, but fail over.
	errDrained = errors.New("router: backend draining")
	// errNoBackend: every admissible replica was tried (or none was
	// admissible); the client should retry later.
	errNoBackend = errors.New("router: no ready backend")
)

// bufferedResp is a fully-read backend response ready to relay.
type bufferedResp struct {
	status  int
	header  http.Header
	body    []byte
	backend string
}

// relayHeaders are the backend response headers worth forwarding; hop-by-hop
// and connection-management headers are not.
var relayHeaders = []string{"Content-Type", "Retry-After"}

// proxyHeaders are the request headers forwarded to backends.
var proxyHeaders = []string{"Content-Type", "Idempotency-Key", "X-Merlin-Tenant"}

// forward tries the candidates in replica order until one yields a
// relayable response (2xx–4xx), spending at most `budget` attempts on
// admissible backends. Connection errors and non-503 5xx record breaker
// failures; 503 marks the backend drained. Every failover emits a
// router.retry span.
func (rt *Router) forward(ctx context.Context, method, path string, header http.Header, body []byte, cands []*backend, budget int) (*bufferedResp, error) {
	attempts := 0
	var lastErr error
	for _, b := range cands {
		if attempts >= budget {
			break
		}
		if !b.admissible(rt.cfg.now()) {
			continue
		}
		attempts++
		br, err := rt.attempt(ctx, b, method, path, header, body)
		if err == nil {
			return br, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		rt.inc("forward.failovers")
		_, sp := trace.StartSpan(ctx, "router.retry")
		sp.SetAttr("from", b.id)
		sp.SetAttr("cause", err.Error())
		sp.End()
	}
	if lastErr == nil {
		lastErr = errNoBackend
	}
	return nil, lastErr
}

// attempt sends the request to one backend and buffers the response.
// Breaker accounting happens here: the caller only sequences attempts.
func (rt *Router) attempt(ctx context.Context, b *backend, method, path string, header http.Header, body []byte) (*bufferedResp, error) {
	_, sp := trace.StartSpan(ctx, "router.forward")
	sp.SetAttr("backend", b.id)
	defer sp.End()
	rt.inc("forward.attempts")
	b.mu.Lock()
	b.forwards++
	b.mu.Unlock()

	resp, err := rt.send(ctx, b, method, path, header, body)
	if err != nil {
		sp.SetAttr("outcome", "conn_error")
		b.recordFailure(rt.cfg.now(), rt.pol)
		return nil, fmt.Errorf("%w: %s: %v", errConn, b.id, err)
	}
	sp.SetAttr("status", strconv.Itoa(resp.StatusCode))
	if ferr := rt.classify(b, resp.StatusCode); ferr != nil {
		drainBody(resp)
		sp.SetAttr("outcome", "failover")
		return nil, fmt.Errorf("%w: %s", ferr, b.id)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxRelayBytes))
	resp.Body.Close()
	if err != nil {
		// The verdict arrived but the body did not; the backend connection
		// died mid-response. Replaying a buffered (unstreamed) response is
		// safe — nothing reached the client yet.
		sp.SetAttr("outcome", "body_error")
		b.recordFailure(rt.cfg.now(), rt.pol)
		return nil, fmt.Errorf("%w: %s: %v", errConn, b.id, err)
	}
	sp.SetAttr("outcome", "relay")
	b.recordSuccess()
	return &bufferedResp{status: resp.StatusCode, header: resp.Header, body: raw, backend: b.id}, nil
}

// forwardStream is forward for the NDJSON batch-stream path: failover works
// exactly the same up to the moment a relayable response exists, after
// which the live response is handed back for streaming — from then on a
// failure is the client's to observe, never retried (results already
// crossed the wire). The caller must close the response body.
func (rt *Router) forwardStream(ctx context.Context, path string, header http.Header, body []byte, cands []*backend, budget int) (*http.Response, *backend, error) {
	attempts := 0
	var lastErr error
	for _, b := range cands {
		if attempts >= budget {
			break
		}
		if !b.admissible(rt.cfg.now()) {
			continue
		}
		attempts++
		_, sp := trace.StartSpan(ctx, "router.forward")
		sp.SetAttr("backend", b.id)
		sp.SetAttr("mode", "stream")
		resp, err := rt.send(ctx, b, http.MethodPost, path, header, body)
		rt.inc("forward.attempts")
		b.mu.Lock()
		b.forwards++
		b.mu.Unlock()
		switch {
		case err != nil:
			sp.SetAttr("outcome", "conn_error")
			sp.End()
			b.recordFailure(rt.cfg.now(), rt.pol)
			lastErr = fmt.Errorf("%w: %s: %v", errConn, b.id, err)
		default:
			if ferr := rt.classify(b, resp.StatusCode); ferr != nil {
				drainBody(resp)
				sp.SetAttr("outcome", "failover")
				sp.End()
				lastErr = fmt.Errorf("%w: %s", ferr, b.id)
				break
			}
			sp.SetAttr("outcome", "relay")
			sp.End()
			b.recordSuccess()
			return resp, b, nil
		}
		if ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		rt.inc("forward.failovers")
		_, rsp := trace.StartSpan(ctx, "router.retry")
		rsp.SetAttr("from", b.id)
		rsp.End()
	}
	if lastErr == nil {
		lastErr = errNoBackend
	}
	return nil, nil, lastErr
}

// classify sorts a backend status into relay (nil), drain-failover
// (errDrained) or breaker-failover (errUpstream). 2xx–4xx relay: a 4xx is
// a verdict about the request and MUST NOT burn failover attempts — the
// next replica would only say the same thing.
func (rt *Router) classify(b *backend, status int) error {
	switch {
	case status < 500:
		return nil
	case status == http.StatusServiceUnavailable:
		// Alive but refusing work: drained until the prober says otherwise.
		// Not a breaker failure — draining is cooperative, not broken.
		b.setDrained(true)
		b.recordSuccess()
		return errDrained
	default:
		b.recordFailure(rt.cfg.now(), rt.pol)
		return errUpstream
	}
}

// send builds and issues one proxy request. The faultinject site fires
// before the wire: an injected error is indistinguishable from a
// connection failure, which is exactly what the chaos drill wants.
func (rt *Router) send(ctx context.Context, b *backend, method, path string, header http.Header, body []byte) (*http.Response, error) {
	if err := faultinject.Fire(faultinject.SiteRouterForward); err != nil {
		return nil, err
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.id+path, rd)
	if err != nil {
		return nil, err
	}
	for _, h := range proxyHeaders {
		if v := header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	return rt.hc.Do(req)
}

// forwardHedged is forward for cache-likely reads: it launches the request
// at the home replica, and if no verdict arrives within HedgeDelay launches
// a second copy at the next admissible replica; the first relayable
// response wins and the loser is canceled. Route requests are pure
// functions of their body (the backends cache them by canonical
// fingerprint), so duplicating one is always safe. Returns errNoBackend
// when neither attempt produced a relayable response; the caller may then
// fall back to the sequential path.
func (rt *Router) forwardHedged(ctx context.Context, path string, header http.Header, body []byte, cands []*backend) (*bufferedResp, error) {
	// usable (not admissible) on purpose: admissible consumes a half-open
	// trial ticket, and if fewer than two replicas qualify we fall back to
	// the sequential path — which would then find the ticketed backend
	// inadmissible and skip it entirely. A half-open backend receiving a
	// hedge without a ticket is the lesser harm.
	now := rt.cfg.now()
	var pair []*backend
	for _, b := range cands {
		if b.usable(now) {
			pair = append(pair, b)
			if len(pair) == 2 {
				break
			}
		}
	}
	if len(pair) < 2 {
		return rt.forward(ctx, http.MethodPost, path, header, body, cands, rt.cfg.MaxAttempts)
	}
	rt.inc("hedge.launched")

	type out struct {
		br  *bufferedResp
		err error
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // the loser's attempt dies with the handler
	ch := make(chan out, 2)
	launch := func(b *backend) {
		rt.goGuard("hedge "+b.id, func() {
			br, err := rt.attempt(hctx, b, http.MethodPost, path, header, body)
			ch <- out{br, err}
		})
	}
	launch(pair[0])
	timer := time.NewTimer(rt.cfg.HedgeDelay)
	defer timer.Stop()

	launched, received := 1, 0
	var lastErr error
	for received < launched {
		select {
		case <-timer.C:
			if launched == 1 {
				launch(pair[1])
				launched = 2
				rt.inc("hedge.fired")
			}
		case o := <-ch:
			received++
			if o.err == nil {
				if received == 1 && launched == 2 {
					rt.inc("hedge.first_win")
				}
				return o.br, nil
			}
			lastErr = o.err
			// The home replica failed outright before the hedge timer: fire
			// the hedge now — waiting out the delay would only add latency
			// to a failover we already know we need.
			if launched == 1 {
				launch(pair[1])
				launched = 2
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if lastErr == nil {
		lastErr = errNoBackend
	}
	return nil, lastErr
}

// drainBody discards and closes a response body so the transport can reuse
// the connection.
func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
