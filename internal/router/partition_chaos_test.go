package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	stdnet "net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"merlin/internal/qos"
	"merlin/internal/service"
)

// partitionGrace is how long a partitioning child keeps serving after
// acking /ctl/partition: long enough for in-flight requests to finish (so
// nothing hangs on a frozen socket), short enough that the drill's
// convergence clock — started after this grace — is honest.
const partitionGrace = 250 * time.Millisecond

// TestPartitionChaos is the gossip/replication acceptance drill: a 5-node
// fleet — two in-process routers and three re-exec'd durable merlind
// backends, all gossiping at 100ms — under concurrent multi-tenant load,
// while one backend is partitioned (listener closed, process SIGSTOPped:
// gossip-reachable to no one, journal intact) and another is SIGKILLed.
// The drill asserts the fleet coordinates truthfully:
//
//   - both routers' gossip views converge on each failure (the victim
//     leaves Alive) within 2s of the node going silent;
//   - the fleet brownout raises on both routers while the lone survivor
//     saturates, and recovers to level 0 after the fleet heals;
//   - every response stays truthful: correct answers or retryable errors
//     with honest codes — never a hang, a bare 500, or a fabricated 404;
//   - every acknowledged job completes with its result (done, or degraded
//     with the tier drop annotated), and jobs owned by the partitioned
//     backend — which never serves again — are answered from replicas
//     (the poll says so via the truthful "replica" flag).
func TestPartitionChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess fleet drill; skipped in -short")
	}

	// --- Reserve the fleet's addresses up front: the gossip mesh and the
	// replica ring are both built from URLs that must exist before any
	// process boots. Backend listeners are re-bound by the children; router
	// listeners stay open and are handed to httptest. ---
	const nBackends = 3
	backendAddrs := make([]string, nBackends)
	dirs := make([]string, nBackends)
	for i := range backendAddrs {
		ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		backendAddrs[i] = ln.Addr().String()
		ln.Close()
		dirs[i] = t.TempDir()
	}
	backends := make([]string, nBackends)
	for i, a := range backendAddrs {
		backends[i] = "http://" + a
	}
	routerLns := make([]stdnet.Listener, 2)
	routerURLs := make([]string, 2)
	for i := range routerLns {
		ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		routerLns[i] = ln
		routerURLs[i] = "http://" + ln.Addr().String()
	}

	// --- Boot the three durable backends: each gossips with everyone else
	// and replicates results to its R=2 ring successors. ---
	ring := strings.Join(backends, ",")
	peersOf := func(self string) string {
		var ps []string
		for _, u := range append(append([]string(nil), backends...), routerURLs...) {
			if u != self {
				ps = append(ps, u)
			}
		}
		return strings.Join(ps, ",")
	}
	children := make([]*exec.Cmd, nBackends)
	for i := range children {
		children[i] = startPartitionChild(t, backendAddrs[i], dirs[i], peersOf(backends[i]), ring)
	}
	defer func() {
		for _, c := range children {
			if c != nil && c.Process != nil {
				_ = c.Process.Kill()
				_ = c.Wait()
			}
		}
	}()
	for _, b := range backends {
		waitClusterReady(t, b, 30*time.Second)
	}

	// --- Two routers in front, gossiping with the backends, coordinating
	// brownout fleet-wide. FleetHighWater 0.6 so one saturated survivor
	// provably raises the level. ---
	routers := make([]*Router, 2)
	fronts := make([]*httptest.Server, 2)
	for i := range routers {
		rt, err := New(Config{
			Backends:         backends,
			ProbeInterval:    20 * time.Millisecond,
			ProbeTimeout:     time.Second,
			FailureThreshold: 3,
			EjectBase:        100 * time.Millisecond,
			EjectMax:         500 * time.Millisecond,
			MaxAttempts:      3,
			QoS:              qos.Config{Rate: 300, Burst: 600, MaxConcurrent: 64},
			GossipSelf:       routerURLs[i],
			GossipPeers:      backends,
			GossipInterval:   100 * time.Millisecond,
			FleetBrownout:    true,
			FleetHighWater:   0.6,
			FleetLowWater:    0.3,
			FleetCooldown:    2,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		ts := httptest.NewUnstartedServer(rt.Handler())
		ts.Listener.Close()
		ts.Listener = routerLns[i]
		ts.Start()
		defer ts.Close()
		routers[i] = rt
		fronts[i] = ts
	}
	hc := &http.Client{Timeout: 30 * time.Second}

	// waitStats polls one router's /v1/stats until pred holds.
	waitStats := func(front *httptest.Server, what string, within time.Duration, pred func(Stats) bool) {
		t.Helper()
		deadline := time.Now().Add(within)
		for {
			resp, err := hc.Get(front.URL + "/v1/stats")
			if err != nil {
				t.Fatalf("stats: %v", err)
			}
			var st Stats
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("stats decode: %v", err)
			}
			if pred(st) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s on %s", what, front.URL)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// memberState finds a gossiped member's state in a stats snapshot.
	memberState := func(st Stats, node string) string {
		if st.Gossip == nil {
			return ""
		}
		for _, m := range st.Gossip.Members {
			if m.Node == node {
				return m.State
			}
		}
		return ""
	}

	// Both routers must see all three backends alive before any failure:
	// convergence-on-failure means nothing if the view never converged on
	// health first.
	for _, front := range fronts {
		waitStats(front, "initial gossip convergence", 10*time.Second, func(st Stats) bool {
			for _, b := range backends {
				if memberState(st, b) != "alive" {
					return false
				}
			}
			return true
		})
	}

	// --- The storm: concurrent tenants posting routes and jobs through
	// both routers for the whole drill. ---
	type outcome struct {
		path   string
		status int
		code   string
	}
	var (
		outMu    sync.Mutex
		outcomes []outcome
		acked    []string
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	tenants := []string{"acme", "initech", "hooli", ""}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			front := fronts[g%2]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				seed := int64(g*10000 + i)
				path := "/v1/route"
				if i%3 == 0 {
					path = "/v1/jobs"
				}
				req, err := http.NewRequest(http.MethodPost, front.URL+path, bytes.NewReader(clusterRouteBody(seed)))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set("Content-Type", "application/json")
				if tn := tenants[g%len(tenants)]; tn != "" {
					req.Header.Set(service.TenantHeader, tn)
				}
				resp, err := hc.Do(req)
				if err != nil {
					t.Errorf("router dropped %s: %v", path, err)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				o := outcome{path: path, status: resp.StatusCode}
				if resp.StatusCode >= 400 {
					var eb service.ErrorBody
					_ = json.Unmarshal(raw, &eb)
					o.code = eb.Code
				} else if path == "/v1/jobs" {
					var st service.JobStatus
					if json.Unmarshal(raw, &st) == nil && st.ID != "" {
						outMu.Lock()
						acked = append(acked, st.ID)
						outMu.Unlock()
					}
				}
				outMu.Lock()
				outcomes = append(outcomes, o)
				outMu.Unlock()
				time.Sleep(5 * time.Millisecond)
			}
		}(g)
	}

	// Healthy load first, so every backend owns some acknowledged jobs.
	time.Sleep(600 * time.Millisecond)

	// --- Partition backends[1]: it closes its listener and freezes, so it
	// can neither speak nor be spoken to — but its journal and queue
	// survive. Both routers must converge off Alive within 2s of silence. ---
	partitioned := backends[1]
	resp, err := hc.Post(partitioned+"/ctl/partition", "", nil)
	if err != nil {
		t.Fatalf("partition control: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("partition control: status %d", resp.StatusCode)
	}
	time.Sleep(partitionGrace + 50*time.Millisecond) // the node is silent from here
	for _, front := range fronts {
		waitStats(front, "gossip convergence on the partition", 2*time.Second, func(st Stats) bool {
			s := memberState(st, partitioned)
			return s != "" && s != "alive"
		})
	}

	// --- SIGKILL backends[2] mid-storm: same 2s convergence bound. ---
	killed := backends[2]
	if err := children[2].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = children[2].Wait()
	children[2] = nil
	for _, front := range fronts {
		waitStats(front, "gossip convergence on the kill", 2*time.Second, func(st Stats) bool {
			s := memberState(st, killed)
			return s != "" && s != "alive"
		})
	}

	// --- Fleet brownout raise: the lone survivor's queue saturates under
	// the whole storm; its gossiped pressure must raise the level on BOTH
	// routers (dead members are excluded, so the mean is the survivor). ---
	for _, front := range fronts {
		waitStats(front, "fleet brownout raise", 20*time.Second, func(st Stats) bool {
			return st.Fleet != nil && st.Fleet.Level >= 1 && st.Fleet.Raised >= 1
		})
	}

	// --- Heal: thaw the partitioned backend (it drains its acknowledged
	// queue and replicates results outbound, but never serves again — its
	// listener is gone), and restart the killed one over its journal. ---
	if err := children[1].Process.Signal(syscall.SIGCONT); err != nil {
		t.Fatal(err)
	}
	children[2] = startPartitionChild(t, backendAddrs[2], dirs[2], peersOf(killed), ring)
	waitClusterReady(t, killed, 30*time.Second)

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	// --- Fleet brownout recovery: with the storm over and two backends
	// serving again, both routers must walk the level back to 0 through
	// the cooldown. ---
	for _, front := range fronts {
		waitStats(front, "fleet brownout recovery", 30*time.Second, func(st Stats) bool {
			return st.Fleet != nil && st.Fleet.Level == 0 && st.Fleet.Lowered >= 1
		})
	}

	// --- Judge every outcome: correct answers or truthful retryable
	// errors, nothing else. ---
	counts := map[string]int{}
	for _, o := range outcomes {
		key := fmt.Sprintf("%s %d %s", o.path, o.status, o.code)
		counts[key]++
		switch {
		case o.status == http.StatusOK || o.status == http.StatusAccepted:
		case o.status == http.StatusTooManyRequests:
			if o.code != "tenant_rate_limited" && o.code != "tenant_concurrency" && o.code != "queue_full" {
				t.Errorf("429 with untruthful code %q", o.code)
			}
		case o.status == http.StatusServiceUnavailable:
			if o.code == "" {
				t.Errorf("503 without an error code is not a truthful retryable error")
			}
		default:
			t.Errorf("outcome %s: neither a correct response nor a truthful retryable error", key)
		}
	}
	t.Logf("storm outcomes: %v", counts)
	if len(acked) == 0 {
		t.Fatal("storm acknowledged no jobs; drill proves nothing")
	}

	// --- Zero lost acknowledged jobs, the fleet provably serving them for
	// the dead and partitioned owners: every acked ID completes through a
	// router with its result inline — "done", or "degraded" when the
	// browned-out survivor truthfully annotated the tier drop. The
	// partitioned backend never serves again, so its jobs can only be
	// answered by the survivors — either from a replicated result (the
	// truthful replica flag) or recomputed under a takeover claim (the
	// survivors' jobs.takeovers counters). A 404 at any point means an
	// acked job was lost; "failed" means a verdict was fabricated under
	// load. ---
	replicaServed := 0
	deadline := time.Now().Add(90 * time.Second)
	for i, id := range acked {
		front := fronts[i%2]
		for {
			resp, err := hc.Get(front.URL + "/v1/jobs/" + id)
			if err != nil {
				t.Fatalf("poll %s: %v", id, err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusNotFound {
				t.Fatalf("acknowledged job %s polled as 404: an acked job was lost", id)
			}
			if resp.StatusCode == http.StatusOK {
				var st service.JobStatus
				if err := json.Unmarshal(raw, &st); err != nil {
					t.Fatalf("poll %s: %v (%s)", id, err, raw)
				}
				if st.State == string(service.JobDone) || st.State == string(service.JobDegraded) {
					if st.Result == nil {
						t.Fatalf("acknowledged job %s ended %s without its result", id, st.State)
					}
					if st.Replica {
						replicaServed++
					}
					break
				}
				if service.JobState(st.State).Terminal() {
					t.Fatalf("acknowledged job %s ended %s (%s %s), want done", id, st.State, st.Code, st.Error)
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("acknowledged job %s never reached done", id)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	var takeovers uint64
	for _, b := range []string{backends[0], killed} {
		st := failoverBackendStats(t, hc, b)
		if st.Durability != nil && st.Durability.Leases != nil {
			takeovers += st.Durability.Leases.Takeovers
		}
	}
	if replicaServed == 0 && takeovers == 0 {
		t.Error("the partitioned backend's jobs were neither replica-served nor reclaimed; survivors should show one or the other")
	}
	t.Logf("all %d acknowledged jobs reached done; %d served from replicas, %d takeovers on survivors",
		len(acked), replicaServed, takeovers)
}

// startPartitionChild re-execs this test binary as one gossiping, replicating
// durable merlind backend.
func startPartitionChild(t *testing.T, addr, dir, peers, ring string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestPartitionChaosChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		"MERLIN_PARTITION_CHILD=1",
		"MERLIN_PARTITION_ADDR="+addr,
		"MERLIN_PARTITION_DIR="+dir,
		"MERLIN_PARTITION_PEERS="+peers,
		"MERLIN_PARTITION_RING="+ring,
		// A per-job delay keeps a queue of acknowledged-but-unfinished work
		// behind the workers, so the failures provably land on acked jobs
		// and the survivor's queue utilization provably saturates.
		"MERLIN_FAULTS=service.worker=delay:50ms",
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// TestPartitionChaosChild is the re-exec'd backend: a durable merlind server
// that gossips with the fleet, replicates results onto the backend ring, and
// exposes POST /ctl/partition — which stops serving (closing every
// connection) and freezes the process, simulating a network partition with
// the journal intact. A no-op unless MERLIN_PARTITION_CHILD gates it in.
func TestPartitionChaosChild(t *testing.T) {
	if os.Getenv("MERLIN_PARTITION_CHILD") == "" {
		t.Skip("partition-chaos child; only runs re-exec'd")
	}
	self := "http://" + os.Getenv("MERLIN_PARTITION_ADDR")
	ring, err := NewRing(strings.Split(os.Getenv("MERLIN_PARTITION_RING"), ","), 0)
	if err != nil {
		t.Fatalf("child ring: %v", err)
	}
	s, err := service.NewDurable(service.Config{
		Workers:        2,
		JournalDir:     os.Getenv("MERLIN_PARTITION_DIR"),
		GossipSelf:     self,
		GossipPeers:    strings.Split(os.Getenv("MERLIN_PARTITION_PEERS"), ","),
		GossipInterval: 100 * time.Millisecond,
		ReplicaRing:    ring.PickString,
		ReplicaSelf:    self,
		ReplicaCount:   2,
	})
	if err != nil {
		t.Fatalf("child boot: %v", err)
	}
	ln, err := stdnet.Listen("tcp", os.Getenv("MERLIN_PARTITION_ADDR"))
	if err != nil {
		t.Fatalf("child bind: %v", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	srv := &http.Server{Handler: mux}
	mux.HandleFunc("POST /ctl/partition", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
		go func() {
			// Serve out the grace (in-flight work finishes, the ack
			// flushes), then cut every connection and freeze: from the
			// fleet's view this node vanishes mid-conversation.
			time.Sleep(partitionGrace)
			_ = srv.Close()
			_ = syscall.Kill(syscall.Getpid(), syscall.SIGSTOP)
		}()
	})
	// Serve until partitioned or SIGKILLed; after a partition the process
	// stays alive (frozen, then thawed by the parent) so its workers can
	// finish the acknowledged queue and replicate the results outbound.
	_ = srv.Serve(ln)
	select {}
}
