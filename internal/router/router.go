// Package router is merlin's fleet front tier: it consistent-hashes
// canonical net fingerprints (internal/net/canon.go) onto a replicated ring
// of merlind backends and forwards /v1/route, /v1/batch and /v1/jobs with
// robustness at every hop:
//
//   - Active health probing: a prober GETs every backend's /v1/readyz on an
//     interval. 503 marks the backend drained (no new work, no ejection
//     clock — it serves again the instant readyz recovers); a connection
//     failure marches its circuit breaker toward open.
//   - Circuit breakers: consecutive failures open a per-backend breaker
//     with an exponentially growing ejection timeout (pkg/client's Backoff
//     — the repo's one backoff policy); after the timeout one half-open
//     trial decides between closing and re-opening longer.
//   - Bounded failover: a connection error or 5xx moves the same request to
//     the next ring replica, up to MaxAttempts total tries. 4xx are never
//     retried (they are verdicts about the request), and nothing is retried
//     once response bytes have streamed to the client.
//   - Hedged reads: optionally, a /v1/route whose fingerprint was seen
//     recently (cache-likely on its home backend) launches a second attempt
//     at the next replica after HedgeDelay; first answer wins, the loser is
//     canceled.
//   - Per-tenant QoS (internal/qos): token-bucket rate limits and
//     concurrency quotas keyed by X-Merlin-Tenant, with priority classes.
//     An over-rate degradable request is forwarded with allow_degraded set
//     (the backend's ladder serves a cheaper tier) before the router ever
//     answers 429 — a hot tenant degrades itself, not the fleet.
//
// Everything is observable: router.pick / router.forward / router.retry /
// qos.admit spans via internal/trace, per-backend breaker state and
// per-tenant admission counts on /v1/stats, and fault-injection sites
// router.forward / router.health for chaos drills.
package router

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"log"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"merlin/internal/faultinject"
	"merlin/internal/gossip"
	"merlin/internal/net"
	"merlin/internal/qos"
	"merlin/internal/service"
	"merlin/internal/trace"
	"merlin/pkg/client"
)

// Config sizes a Router. Zero values take the documented defaults.
type Config struct {
	// Backends are the merlind base URLs forming the ring. Required.
	Backends []string
	// Replicas is the virtual-node count per backend; default 64.
	Replicas int

	// FailureThreshold is how many consecutive breaker-visible failures
	// (connection errors, 5xx, failed probes) open a backend's breaker;
	// default 3.
	FailureThreshold int
	// EjectBase/EjectMax bound the exponential ejection timeout an open
	// breaker waits before its half-open trial; defaults 500ms and 30s.
	EjectBase, EjectMax time.Duration
	// ProbeInterval is the readyz probe cadence; default 500ms, negative
	// disables active probing (breakers then move only on request traffic).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one readyz probe; default 2s.
	ProbeTimeout time.Duration

	// MaxAttempts is the total forward tries per request across replicas
	// (first attempt + failovers); default 3, clamped to the backend count.
	MaxAttempts int

	// HedgeDelay, when positive, enables hedged reads: a /v1/route whose
	// fingerprint is in the recent set launches a second attempt at the
	// next replica after this delay. Default 0 (disabled).
	HedgeDelay time.Duration
	// HedgeRecent is the recent-fingerprint set capacity; default 1024.
	HedgeRecent int

	// QoS configures per-tenant admission; see qos.Config for defaults.
	QoS qos.Config

	// GossipSelf, when non-empty, joins the router to the health gossip
	// mesh under this name (its own base URL) and mounts POST /v1/gossip.
	GossipSelf string
	// GossipPeers seeds the mesh (typically the backend URLs — backends
	// gossip too, so one live seed is enough to learn the rest).
	GossipPeers []string
	// GossipInterval is the gossip tick; default 200ms (see gossip.Config).
	GossipInterval time.Duration

	// FleetBrownout, when true (requires GossipSelf), aggregates gossiped
	// backend pressure into a fleet load level: level ≥ 1 forwards even
	// within-rate degradable requests with allow_degraded set and sheds
	// bronze overdraft, level ≥ 2 sheds standard overdraft too — the fleet
	// browns out together before any one backend saturates alone.
	FleetBrownout bool
	// FleetHighWater raises the fleet level when mean backend pressure
	// (max of queue utilization and brownout-tier fraction) reaches it;
	// default 0.7. FleetHighWater+FleetStep raises level 2.
	FleetHighWater float64
	// FleetLowWater lowers the level after FleetCooldown consecutive
	// samples below it; defaults 0.3 and 5.
	FleetLowWater float64
	FleetCooldown int

	// TraceRing is how many completed router traces are retained for
	// GET /v1/trace/{id}; default 256, negative disables router tracing.
	TraceRing int

	// Seed makes breaker-ejection jitter deterministic in tests.
	Seed int64
	// now substitutes the clock in tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.EjectBase <= 0 {
		c.EjectBase = 500 * time.Millisecond
	}
	if c.EjectMax <= 0 {
		c.EjectMax = 30 * time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.HedgeRecent <= 0 {
		c.HedgeRecent = 1024
	}
	if c.TraceRing == 0 {
		c.TraceRing = 256
	}
	if c.FleetHighWater <= 0 {
		c.FleetHighWater = 0.7
	}
	if c.FleetLowWater <= 0 {
		c.FleetLowWater = 0.3
	}
	if c.FleetCooldown <= 0 {
		c.FleetCooldown = 5
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Router is the front tier. Create with New, serve via Handler, stop with
// Close. Safe for concurrent use.
type Router struct {
	cfg      Config
	ring     *ring
	backends map[string]*backend
	order    []string // construction order, for scatter and stats
	pol      breakerPolicy
	adm      *qos.Controller
	hc       *http.Client
	traces   *trace.Collector // nil when TraceRing < 0
	gossip   *gossip.Node     // nil when GossipSelf is empty
	fleet    *fleetBrownout   // nil unless FleetBrownout

	met struct {
		mu sync.Mutex
		m  map[string]uint64
	}

	recentMu sync.Mutex
	recent   map[string]struct{} // fingerprints seen lately (hedge candidates)
	recentQ  []string            // FIFO eviction order

	ownerMu sync.Mutex
	owners  map[string]string // job ID → backend that accepted it
	ownerQ  []string          // FIFO eviction order

	stopProbe chan struct{}
	stopOnce  sync.Once
	probeWG   sync.WaitGroup
}

// New builds a router over the configured backends and starts its readyz
// prober. It does not contact the backends synchronously: a router in front
// of a still-booting fleet starts serving 503s and converges as probes land.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	r, err := newRing(cfg.Backends, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	adm, err := qos.NewController(cfg.QoS)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:       cfg,
		ring:      r,
		backends:  make(map[string]*backend, len(r.backends)),
		order:     r.backends,
		pol:       breakerPolicy{threshold: cfg.FailureThreshold, backoff: client.NewBackoff(cfg.EjectBase, cfg.EjectMax, cfg.Seed)},
		adm:       adm,
		hc:        &http.Client{},
		recent:    make(map[string]struct{}),
		owners:    make(map[string]string),
		stopProbe: make(chan struct{}),
	}
	rt.met.m = make(map[string]uint64)
	for _, id := range r.backends {
		rt.backends[id] = &backend{id: id}
	}
	if cfg.TraceRing >= 0 {
		rt.traces = trace.NewCollector(cfg.TraceRing, 0, 1)
	}
	if cfg.GossipSelf != "" {
		gn, err := gossip.New(gossip.Config{
			Self:      cfg.GossipSelf,
			Role:      gossip.RoleRouter,
			Peers:     cfg.GossipPeers,
			Interval:  cfg.GossipInterval,
			Transport: gossip.HTTPTransport(&http.Client{Timeout: 2 * time.Second}),
			Seed:      cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		rt.gossip = gn
		gn.Start()
	}
	if cfg.FleetBrownout {
		if rt.gossip == nil {
			return nil, fmt.Errorf("router: FleetBrownout requires GossipSelf")
		}
		rt.fleet = newFleetBrownout(cfg)
		rt.probeWG.Add(1)
		rt.goGuard("fleet-brownout", func() {
			defer rt.probeWG.Done()
			rt.fleetLoop()
		})
	}
	if cfg.ProbeInterval > 0 {
		for _, id := range rt.order {
			b := rt.backends[id]
			rt.probeWG.Add(1)
			rt.goGuard("prober "+id, func() {
				defer rt.probeWG.Done()
				rt.probeBackend(b)
			})
		}
	}
	return rt, nil
}

// Close stops the prober and the trace collector. In-flight forwards finish
// on their own contexts.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stopProbe) })
	rt.probeWG.Wait()
	if rt.gossip != nil {
		rt.gossip.Stop()
	}
	if rt.traces != nil {
		rt.traces.Close()
	}
}

// goGuard runs fn on a new goroutine with a panic guard: a panic is logged
// and counted, never allowed to kill the router process.
func (rt *Router) goGuard(name string, fn func()) {
	go func() {
		defer func() {
			if rec := recover(); rec != nil {
				rt.inc("panics")
				log.Printf("router: contained panic in %s: %v\n%s", name, rec, debug.Stack())
			}
		}()
		fn()
	}()
}

func (rt *Router) inc(name string) {
	rt.met.mu.Lock()
	rt.met.m[name]++
	rt.met.mu.Unlock()
}

func (rt *Router) counters() map[string]uint64 {
	rt.met.mu.Lock()
	defer rt.met.mu.Unlock()
	out := make(map[string]uint64, len(rt.met.m))
	for k, v := range rt.met.m {
		out[k] = v
	}
	return out
}

// ---- health probing ----

// probeBackend is one backend's probe clock. Each backend gets its own
// goroutine with a deterministic phase offset in [0, ProbeInterval) — N
// routers each probing M backends used to fire N×M readyz requests on the
// same 500ms edge; jittered per-(router, backend) clocks spread that herd
// across the whole interval.
//
// Fresh gossip evidence relaxes the cadence further: while a peer's recent
// digest agrees with our local view that the backend is alive and ready,
// only every 4th tick actually probes — indirect evidence substitutes for
// direct probes exactly when nothing is wrong, and full cadence resumes
// the moment anything (gossip or local state) disagrees.
func (rt *Router) probeBackend(b *backend) {
	select {
	case <-rt.stopProbe:
		return
	case <-time.After(rt.probePhase(b.id)):
	}
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	skips := 0
	for {
		select {
		case <-rt.stopProbe:
			return
		case <-t.C:
			if rt.gossipRelaxes(b) && skips < probeRelax-1 {
				skips++
				rt.inc("probes.deferred")
				continue
			}
			skips = 0
			rt.probe(b)
		}
	}
}

// probeRelax is the cadence stretch under fresh agreeing gossip: probe
// every Nth tick instead of every tick.
const probeRelax = 4

// probePhase is the deterministic jitter offset for one backend's probe
// clock: a hash of (seed, backend) spread over [0, ProbeInterval).
func (rt *Router) probePhase(id string) time.Duration {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", rt.cfg.Seed, id)
	return time.Duration(h.Sum64() % uint64(rt.cfg.ProbeInterval))
}

// gossipRelaxes reports whether fresh gossip evidence lets this probe round
// be skipped. Only unanimously good news relaxes: the gossiped digest says
// alive and ready, the evidence advanced within the last two intervals, and
// our own breaker agrees (closed, undrained). Fresh evidence of *trouble*
// never defers a probe — and a fresh not-ready digest proactively drains
// the backend locally (cheap one-way relay; the probe that follows at full
// cadence is what undrains it).
func (rt *Router) gossipRelaxes(b *backend) bool {
	if rt.gossip == nil {
		return false
	}
	ev, ok := rt.gossip.Evidence(b.id)
	if !ok || ev.Age > 2*rt.cfg.ProbeInterval {
		return false
	}
	if ev.Digest.State == gossip.Alive && !ev.Digest.Ready {
		b.setDrained(true)
		rt.inc("gossip.drain_relay")
		return false
	}
	if ev.Digest.State != gossip.Alive {
		return false
	}
	b.mu.Lock()
	agree := b.state == stateClosed && !b.drained
	b.mu.Unlock()
	return agree
}

// probe asks one backend's /v1/readyz. 200 → undrain + breaker success;
// 503 → drained (reachable, so also breaker success); connection error or
// unexpected status → breaker failure. An open breaker is only probed once
// its ejection timeout expires — the probe IS the half-open trial.
func (rt *Router) probe(b *backend) {
	if !b.probeTicket(rt.cfg.now()) {
		return // still inside its ejection timeout
	}
	rt.inc("probes")
	if err := faultinject.Fire(faultinject.SiteRouterHealth); err != nil {
		rt.probeFailed(b)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.id+"/v1/readyz", nil)
	if err != nil {
		rt.probeFailed(b)
		return
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		rt.probeFailed(b)
		return
	}
	drainBody(resp)
	switch {
	case resp.StatusCode == http.StatusOK:
		b.setDrained(false)
		b.recordSuccess()
	case resp.StatusCode == http.StatusServiceUnavailable:
		// Draining (or durability-degraded): reachable, so the breaker is
		// happy, but no new work until readyz recovers.
		b.setDrained(true)
		b.recordSuccess()
		rt.inc("probes.drained")
	default:
		rt.probeFailed(b)
	}
}

func (rt *Router) probeFailed(b *backend) {
	b.mu.Lock()
	b.probeFail++
	b.mu.Unlock()
	b.recordFailure(rt.cfg.now(), rt.pol)
	rt.inc("probes.failed")
}

// probeTicket is admissible() for the prober: a closed backend is always
// probed (drained or not — the probe is how it undrains), an open one only
// after its ejection timeout (becoming the half-open trial).
func (b *backend) probeTicket(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateOpen:
		if now.Before(b.openUntil) {
			return false
		}
		b.state = stateHalfOpen
		b.trialing = true
		return true
	case stateHalfOpen:
		if b.trialing {
			return false
		}
		b.trialing = true
		return true
	}
	return false
}

// ---- fingerprinting ----

// shardKey fingerprints a request body for ring placement: the canonical
// encoding of the net(s) when the body parses as a route/batch request
// (order-independent — MERLIN's semi-order-independence makes the canon
// bytes a stable shard key), else a hash of the raw bytes (the backend will
// reject the request; where it lands doesn't matter).
func shardKey(path string, body []byte) (key uint64, fp string) {
	var canon []byte
	switch path {
	case "/v1/route", "/v1/jobs":
		var req service.RouteRequest
		if err := json.Unmarshal(body, &req); err == nil && req.Net != nil {
			canon = req.Net.AppendCanonical(nil)
		}
	case "/v1/batch":
		var req service.BatchRequest
		if err := json.Unmarshal(body, &req); err == nil && len(req.Nets) > 0 {
			for _, n := range req.Nets {
				if n == nil {
					canon = nil
					break
				}
				canon = n.AppendCanonical(canon)
			}
		}
	}
	if canon == nil {
		canon = body
	}
	sum := sha256.Sum256(canon)
	return binary.BigEndian.Uint64(sum[:8]), fmt.Sprintf("%x", sum[:16])
}

// netKey exposes the single-net shard fingerprint for tests and tools.
func netKey(n *net.Net) uint64 {
	sum := sha256.Sum256(n.AppendCanonical(nil))
	return binary.BigEndian.Uint64(sum[:8])
}

// ---- recent-fingerprint set (hedge candidates) and job owners ----

// rememberFingerprint records fp and reports whether it was already present
// (= a repeat request, likely cached on its home backend — hedge-worthy).
func (rt *Router) rememberFingerprint(fp string) (seen bool) {
	rt.recentMu.Lock()
	defer rt.recentMu.Unlock()
	if _, ok := rt.recent[fp]; ok {
		return true
	}
	rt.recent[fp] = struct{}{}
	rt.recentQ = append(rt.recentQ, fp)
	if len(rt.recentQ) > rt.cfg.HedgeRecent {
		old := rt.recentQ[0]
		rt.recentQ = rt.recentQ[1:]
		delete(rt.recent, old)
	}
	return false
}

// rememberOwner maps an accepted job ID to the backend that acknowledged
// it, so polls go straight home instead of scattering.
func (rt *Router) rememberOwner(jobID, backendID string) {
	rt.ownerMu.Lock()
	defer rt.ownerMu.Unlock()
	if _, ok := rt.owners[jobID]; ok {
		rt.owners[jobID] = backendID
		return
	}
	rt.owners[jobID] = backendID
	rt.ownerQ = append(rt.ownerQ, jobID)
	if len(rt.ownerQ) > 4096 {
		old := rt.ownerQ[0]
		rt.ownerQ = rt.ownerQ[1:]
		delete(rt.owners, old)
	}
}

func (rt *Router) ownerOf(jobID string) (string, bool) {
	rt.ownerMu.Lock()
	defer rt.ownerMu.Unlock()
	id, ok := rt.owners[jobID]
	return id, ok
}

// claimantOf consults gossip for a takeover claim on jobID: a backend
// advertising that it claimed the job (its original owner died or drained)
// is where the job now lives, so polls try it before scattering. The
// highest-term claim from a live member wins — terms totally order owners,
// so a stale claimant loses to the node that out-termed it.
func (rt *Router) claimantOf(jobID string) (string, bool) {
	if rt.gossip == nil {
		return "", false
	}
	var node string
	var best uint64
	for _, m := range rt.gossip.Members() {
		if m.Digest.State == gossip.Dead {
			continue
		}
		for _, c := range m.Digest.Claims {
			if c.Job == jobID && c.Term > best {
				node, best = m.Digest.Node, c.Term
			}
		}
	}
	return node, node != ""
}

// candidates returns the ring's replica order for key with each backend's
// live state attached; the caller filters admissibility per attempt (state
// can change between attempts).
func (rt *Router) candidates(key uint64) []*backend {
	ids := rt.ring.pick(key)
	out := make([]*backend, 0, len(ids))
	for _, id := range ids {
		out = append(out, rt.backends[id])
	}
	return out
}

// Stats is the router's /v1/stats document.
type Stats struct {
	Backends map[string]BackendStats `json:"backends"`
	// ReadyBackends counts backends currently accepting work.
	ReadyBackends int `json:"ready_backends"`
	// Ring geometry.
	RingBackends int `json:"ring_backends"`
	RingReplicas int `json:"ring_replicas"`
	// Counters: forward attempts, retries, hedges, probes, QoS decisions.
	Counters map[string]uint64 `json:"counters"`
	// Tenants is the per-tenant QoS table; TenantsEvicted counts bounded-
	// table evictions.
	Tenants        map[string]qos.TenantStats `json:"tenants"`
	TenantsEvicted uint64                     `json:"tenants_evicted"`
	// Trace reports the router's own trace collector, when enabled.
	Trace *trace.CollectorStats `json:"trace,omitempty"`
	// Gossip reports the membership view, when the router gossips.
	Gossip *gossip.Stats `json:"gossip,omitempty"`
	// Fleet reports the fleet brownout controller, when enabled.
	Fleet *FleetStats `json:"fleet,omitempty"`
}

// Stats snapshots the router.
func (rt *Router) Stats() Stats {
	now := rt.cfg.now()
	st := Stats{
		Backends:     make(map[string]BackendStats, len(rt.backends)),
		RingBackends: len(rt.order),
		RingReplicas: rt.cfg.Replicas,
		Counters:     rt.counters(),
	}
	for id, b := range rt.backends {
		bs := b.stats()
		st.Backends[id] = bs
		if b.usable(now) {
			st.ReadyBackends++
		}
	}
	st.Tenants, st.TenantsEvicted = rt.adm.Stats()
	if rt.traces != nil {
		c := rt.traces.Stats()
		st.Trace = &c
	}
	if rt.gossip != nil {
		g := rt.gossip.Stats()
		st.Gossip = &g
	}
	if rt.fleet != nil {
		f := rt.fleet.stats()
		st.Fleet = &f
	}
	return st
}

// usable reports whether the backend could accept a request right now,
// without consuming a half-open trial ticket (stats/readyz use this).
func (b *backend) usable(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.drained {
		return false
	}
	switch b.state {
	case stateClosed:
		return true
	case stateOpen:
		return !now.Before(b.openUntil)
	case stateHalfOpen:
		return true
	}
	return false
}
