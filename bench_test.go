// Benchmarks regenerating the paper's evaluation (see DESIGN.md §3 for the
// experiment index). Heavy table benches run a single iteration under the
// default -benchtime; custom metrics carry the quality numbers the paper's
// tables report, so `go test -bench . -benchmem` reproduces both the rows
// (printed to stderr) and the headline ratios (as benchmark metrics).
package merlin_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"merlin/internal/core"
	"merlin/internal/curve"
	"merlin/internal/degrade"
	"merlin/internal/expt"
	"merlin/internal/flows"
	"merlin/internal/geom"
	"merlin/internal/net"
	"merlin/internal/order"
	"merlin/internal/ptree"
	"merlin/internal/service"
	"merlin/internal/vangin"
)

// benchProfile trades more quality for speed than flows.ProfileFor so the
// table benches fit a CI budget: the big-net rows run with coarser curve
// caps and a single outer loop. cmd/table1 and cmd/table2 run the full
// profiles; EXPERIMENTS.md reports both.
func benchProfile(n int) flows.Profile {
	p := flows.ProfileFor(n)
	if n > 24 {
		p.Lib = p.Lib.Small(3)
		p.MaxCands = 8
		p.Core.Alpha = 3
		p.Core.MaxSols = 2
		p.Core.MaxLoops = 1
	}
	return p
}

// BenchmarkTable1 is experiment E1: the full 18-net Table 1 run (bench
// budget profile). The three ratio averages the paper reports (area, delay,
// runtime of Flows II and III over Flow I) are attached as metrics.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.RunTable1(expt.Table1Options{Profile: benchProfile}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			expt.WriteTable1(os.Stderr, rows)
			aII, dII, rII, aIII, dIII, rIII := expt.Table1Averages(rows)
			b.ReportMetric(aII, "II/I-area")
			b.ReportMetric(dII, "II/I-delay")
			b.ReportMetric(rII, "II/I-rt")
			b.ReportMetric(aIII, "III/I-area")
			b.ReportMetric(dIII, "III/I-delay")
			b.ReportMetric(rIII, "III/I-rt")
		}
	}
}

// BenchmarkTable2 is experiment E2: the post-layout full-flow Table 2 over
// all 15 synthetic benchmark circuits (at the documented budget scale).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.RunTable2(expt.Table2Options{Scale: 0.02, Profile: benchProfile}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			expt.WriteTable2(os.Stderr, rows)
			aII, dII, rII, aIII, dIII, rIII := expt.Table2Averages(rows)
			b.ReportMetric(aII, "II/I-area")
			b.ReportMetric(dII, "II/I-delay")
			b.ReportMetric(rII, "II/I-rt")
			b.ReportMetric(aIII, "III/I-area")
			b.ReportMetric(dIII, "III/I-delay")
			b.ReportMetric(rIII, "III/I-rt")
		}
	}
}

// BenchmarkNeighborhoodEnum is experiment E3 (Theorem 1): exhaustive
// enumeration of the order neighborhood, whose Fibonacci size is the
// paper's exponential-subspace claim.
func BenchmarkNeighborhoodEnum(b *testing.B) {
	for _, n := range []int{10, 15, 20} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pi := order.Identity(n)
			var got int
			for i := 0; i < b.N; i++ {
				got = len(order.Neighborhood(pi))
			}
			if uint64(got) != order.NeighborhoodSize(n) {
				b.Fatalf("enumerated %d, closed form %d", got, order.NeighborhoodSize(n))
			}
			b.ReportMetric(float64(got), "orders")
		})
	}
}

// BenchmarkMerlinConvergence is experiment E4: MERLIN's loop count across
// random nets ("converges very quickly for most practical examples").
func BenchmarkMerlinConvergence(b *testing.B) {
	prof := flows.ProfileFor(8)
	prof.Core.MaxLoops = 12
	for i := 0; i < b.N; i++ {
		totalLoops := 0
		const nets = 5
		for s := 0; s < nets; s++ {
			nt := net.Generate(net.DefaultGenSpec(8, int64(500+s)), prof.Tech, prof.Lib.Driver)
			res, err := core.Merlin(nt, geom.ReducedHanan(nt.Terminals(), prof.MaxCands),
				prof.Lib, prof.Tech, prof.Core, nil)
			if err != nil {
				b.Fatal(err)
			}
			totalLoops += res.Loops
		}
		if i == 0 {
			b.ReportMetric(float64(totalLoops)/nets, "loops/net")
		}
	}
}

// BenchmarkCandidateSets is experiment E6 (§III.1): the candidate-location
// choice — full Hanan, reduced Hanan, centers of mass — barely moves the
// result once k is large enough. The req metric carries the quality.
func BenchmarkCandidateSets(b *testing.B) {
	prof := flows.ProfileFor(7)
	nt := net.Generate(net.DefaultGenSpec(7, 77), prof.Tech, prof.Lib.Driver)
	sets := map[string][]geom.Point{
		"hanan-full":    geom.HananGrid(nt.Terminals()),
		"hanan-reduced": geom.ReducedHanan(nt.Terminals(), prof.MaxCands),
		"center-mass":   comCandidates(nt, prof.MaxCands),
	}
	for name, cands := range sets {
		b.Run(name, func(b *testing.B) {
			var req float64
			for i := 0; i < b.N; i++ {
				res, err := core.Merlin(nt, cands, prof.Lib, prof.Tech, prof.Core, nil)
				if err != nil {
					b.Fatal(err)
				}
				req = res.ReqAtDriverInput
			}
			b.ReportMetric(req, "req-ns")
			b.ReportMetric(float64(len(cands)), "k")
		})
	}
}

func comCandidates(nt *net.Net, maxK int) []geom.Point {
	ord := order.TSP(nt.Source, nt.SinkPoints())
	pts := make([]geom.Point, len(ord))
	for i, s := range ord {
		pts[i] = nt.Sinks[s].Pos
	}
	cands := geom.CenterOfMassCandidates(pts)
	if len(cands) > maxK {
		cands = cands[:maxK]
	}
	return append(cands, nt.Source)
}

// BenchmarkBubblingAblation is experiment E8: BUBBLE_CONSTRUCT with all four
// grouping structures versus the χ0-only restriction (bubbling disabled),
// from the same deliberately poor initial order.
func BenchmarkBubblingAblation(b *testing.B) {
	prof := flows.ProfileFor(8)
	nt := net.Generate(net.DefaultGenSpec(8, 88), prof.Tech, prof.Lib.Driver)
	cands := geom.ReducedHanan(nt.Terminals(), prof.MaxCands)
	tsp := order.TSP(nt.Source, nt.SinkPoints())
	bad := make(order.Order, len(tsp))
	for i, v := range tsp {
		bad[len(tsp)-1-i] = v
	}
	for _, cfg := range []struct {
		name string
		chis []core.Chi
	}{
		{"bubbling-on", nil},
		{"bubbling-off", []core.Chi{core.Chi0}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			opts := prof.Core
			opts.Chis = cfg.chis
			var req float64
			for i := 0; i < b.N; i++ {
				_, sol, err := core.BubbleConstructOnce(nt, cands, prof.Lib, prof.Tech, opts, bad)
				if err != nil {
					b.Fatal(err)
				}
				req = sol.Req
			}
			b.ReportMetric(req, "req-ns")
		})
	}
}

// BenchmarkBubbleConstruct measures the inner engine across net sizes — the
// practical face of Theorem 6's complexity bound.
func BenchmarkBubbleConstruct(b *testing.B) {
	for _, n := range []int{5, 8, 12} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			prof := flows.ProfileFor(n)
			nt := net.Generate(net.DefaultGenSpec(n, int64(n)), prof.Tech, prof.Lib.Driver)
			cands := geom.ReducedHanan(nt.Terminals(), prof.MaxCands)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				en := core.NewEngine(nt, cands, prof.Lib, prof.Tech, prof.Core)
				if _, err := en.Construct(order.TSP(nt.Source, nt.SinkPoints())); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPTree measures the routing baseline (Lemma 1's DP).
func BenchmarkPTree(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			prof := flows.ProfileFor(n)
			nt := net.Generate(net.DefaultGenSpec(n, int64(n)), prof.Tech, prof.Lib.Driver)
			solver := ptree.NewSolver(nt, geom.ReducedHanan(nt.Terminals(), prof.MaxCands), prof.Tech, prof.PTree)
			ord := order.TSP(nt.Source, nt.SinkPoints())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := solver.Solve(ord); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVanGinneken measures buffer insertion on a fixed routing.
func BenchmarkVanGinneken(b *testing.B) {
	prof := flows.ProfileFor(12)
	nt := net.Generate(net.DefaultGenSpec(12, 3), prof.Tech, prof.Lib.Driver)
	solver := ptree.NewSolver(nt, geom.ReducedHanan(nt.Terminals(), prof.MaxCands), prof.Tech, prof.PTree)
	routed, _, err := solver.Solve(order.TSP(nt.Source, nt.SinkPoints()))
	if err != nil {
		b.Fatal(err)
	}
	vg := prof.VG
	vg.SegLen = 8000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := vangin.Insert(routed, prof.Lib, prof.Tech, vg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceBatch is the service throughput baseline for later scaling
// PRs: N synthetic nets pushed through the worker pool as one batch, at
// several pool sizes. The result cache is disabled so every iteration pays
// full compute; per-worker engine reuse stays on (it is part of the design
// being measured). nets/s is the headline metric. Throughput only scales
// with the pool size when GOMAXPROCS > 1; on a single-CPU box all pool
// sizes report the same rate.
func BenchmarkServiceBatch(b *testing.B) {
	const numNets = 16
	prof := flows.ProfileFor(6)
	nets := make([]*net.Net, numNets)
	for i := range nets {
		nets[i] = net.Generate(net.DefaultGenSpec(6, int64(1000+i)), prof.Tech, prof.Lib.Driver)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := service.New(service.Config{
				Workers:    workers,
				QueueDepth: numNets,
				CacheSize:  -1, // measure compute, not cache
			})
			defer s.Shutdown(context.Background())
			breq := &service.BatchRequest{Nets: nets}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, item := range s.Batch(context.Background(), breq) {
					if item.Error != "" {
						b.Fatalf("net %d: %s", item.Index, item.Error)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(numNets)*float64(b.N)/b.Elapsed().Seconds(), "nets/s")
		})
	}
}

// BenchmarkLadderDegraded prices the degradation ladder: each forced rung
// measured alone (what a brownout level costs/saves per answer, with the
// achieved driver required time attached as a quality metric), plus the
// fall-through case where a solution budget no DP rung can satisfy makes the
// ladder pay for two failed attempts before a constructive rung serves.
func BenchmarkLadderDegraded(b *testing.B) {
	prof := flows.ProfileFor(10)
	prof.Core.MaxLoops = 1
	n := net.Generate(net.DefaultGenSpec(10, 42), prof.Tech, prof.Lib.Driver)
	for _, tier := range degrade.Tiers() {
		b.Run("tier="+tier.String(), func(b *testing.B) {
			var req float64
			for i := 0; i < b.N; i++ {
				res, err := (degrade.Ladder{}).Solve(context.Background(),
					degrade.Request{Net: n, Profile: prof, Start: tier, Floor: tier})
				if err != nil {
					b.Fatal(err)
				}
				req = res.Eval.ReqAtDriverInput
			}
			b.ReportMetric(req, "req-ps")
		})
	}
	b.Run("fallthrough=budget", func(b *testing.B) {
		p := prof
		p.Core.Budget = core.Budget{MaxSolutions: 3}
		for i := 0; i < b.N; i++ {
			res, err := (degrade.Ladder{}).Solve(context.Background(),
				degrade.Request{Net: n, Profile: p, Start: degrade.TierFull, Floor: degrade.TierVanGin})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Degraded {
				b.Fatalf("budget fall-through served tier %s undegraded", res.Tier)
			}
		}
	})
}

// BenchmarkCurveOps measures the DP's innermost data structure.
func BenchmarkCurveOps(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sols := make([]curve.Solution, 256)
	for i := range sols {
		sols[i] = curve.Solution{
			Load: float64(rng.Intn(100)) / 100,
			Req:  float64(rng.Intn(100)) / 10,
			Area: float64(rng.Intn(100)) * 50,
		}
	}
	b.Run("TryInsert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := &curve.Curve{}
			for _, s := range sols {
				c.TryInsert(s.Load, s.Req, s.Area, nil)
			}
		}
	})
	b.Run("AddPrune", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := &curve.Curve{}
			for _, s := range sols {
				c.Add(s)
			}
			c.Prune()
		}
	})
}

// BenchmarkTradeoffExtraction exercises the two §III.1 problem variants on a
// shared final curve (experiment E5's machinery).
func BenchmarkTradeoffExtraction(b *testing.B) {
	prof := flows.ProfileFor(7)
	nt := net.Generate(net.DefaultGenSpec(7, 55), prof.Tech, prof.Lib.Driver)
	cands := geom.ReducedHanan(nt.Terminals(), prof.MaxCands)
	en := core.NewEngine(nt, cands, prof.Lib, prof.Tech, prof.Core)
	final, err := en.Construct(order.TSP(nt.Source, nt.SinkPoints()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := en.Extract(final, core.Goal{Mode: core.GoalMaxReq, AreaBudget: 20000}); err != nil {
			b.Fatal(err)
		}
		if _, _, err := en.Extract(final, core.Goal{Mode: core.GoalMinArea, ReqFloor: 0}); err != nil {
			b.Fatal(err)
		}
	}
}
