package client

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes capped exponential delays with full jitter. It is the
// one backoff policy in the repo: the client's retry sleeps and the router's
// circuit-breaker ejection timeouts both come from here, so "how fast do we
// come back" is defined in exactly one place.
//
// Delay(attempt) for attempt 0,1,2,... grows Base<<attempt up to Max, then
// jitters uniformly in [d/2, d] — full jitter breaks retry synchronization
// across clients hammering the same recovering server. The zero value is
// not usable; construct with NewBackoff.
type Backoff struct {
	// Base is the attempt-0 delay before jitter (default 100ms).
	Base time.Duration
	// Max caps the un-jittered exponential growth (default 5s).
	Max time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff returns a Backoff with the given base and ceiling; zero values
// take the defaults (100ms, 5s). seed 0 seeds from the clock; any other
// value makes the jitter deterministic, for tests.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Backoff{Base: base, Max: max, rng: rand.New(rand.NewSource(seed))}
}

// Seed re-seeds the jitter source (tests).
func (b *Backoff) Seed(seed int64) {
	b.mu.Lock()
	b.rng = rand.New(rand.NewSource(seed))
	b.mu.Unlock()
}

// Delay returns the jittered sleep for the given zero-based attempt. A hint
// longer than the computed value wins — a server's Retry-After knows its
// queue better than our exponent does. Pass hint 0 when there is none.
func (b *Backoff) Delay(attempt int, hint time.Duration) time.Duration {
	d := b.Base << uint(attempt)
	if d > b.Max || d <= 0 {
		d = b.Max
	}
	b.mu.Lock()
	jittered := d/2 + time.Duration(b.rng.Int63n(int64(d/2)+1))
	b.mu.Unlock()
	if hint > jittered {
		return hint
	}
	return jittered
}
