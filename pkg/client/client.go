// Package client is a retrying Go client for the merlind HTTP API
// (internal/service): POST /v1/route and /v1/batch plus the healthz/stats
// probes, with context-aware exponential backoff and full jitter.
//
// Retry policy. Routing requests are pure functions of their body — the
// server caches them by a canonical fingerprint — so replaying one is always
// safe. The client therefore retries transport errors and the two statuses
// that mean "try later" (429 queue_full, 503 shutting_down/draining),
// honoring the server's Retry-After hint when present. Anything else (400,
// 413, 422, 500, 504) is a verdict about this request, not about timing, and
// is returned immediately. Two 422s deserve a different reaction than a
// blind retry: "budget_exceeded" means the problem is too big for its
// budget (resubmit with a bigger one), while "budget_exceeded_wall" means
// it was too slow — resubmitting with AllowDegraded lets the server's
// degradation ladder serve a cheaper tier instead of failing again (the
// response's Tier/Degraded fields report what ran). Streaming batches are
// the one exception to replay safety: once
// NDJSON items have been consumed the request is no longer safely
// replayable by the client (the caller has seen results), so mid-stream
// failures are never retried — see BatchStream.
//
// The probes Healthz, Readyz and Stats never retry: they exist to observe
// the server's current state, and a retried probe answers a different
// question.
//
// Multi-endpoint failover. WithEndpoints configures a list of equivalent
// base URLs (a ring of merlinds, or several routers); a connection failure
// rotates to the next one before the retry, so client-side failover costs
// one attempt instead of the whole budget. See WithEndpoints.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"merlin/internal/service"
)

// APIError is a non-2xx response from the server, carrying the structured
// error body (message + machine-readable code) and any Retry-After hint.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the machine-readable error code ("bad_request",
	// "budget_exceeded", "budget_exceeded_wall", "queue_full", ...; see the
	// service error taxonomy).
	Code string
	// Message is the human-readable error text.
	Message string
	// RetryAfter is the server's Retry-After hint; 0 when absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("merlind: %d %s: %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("merlind: %d: %s", e.Status, e.Message)
}

// Retryable reports whether the error means "try again later" rather than
// "this request is wrong": a full queue or a draining server. A 409
// idempotency conflict is explicitly not retryable — the key will keep
// naming the original request, so replaying can never succeed.
func (e *APIError) Retryable() bool {
	if e.Status == http.StatusConflict {
		return false
	}
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// Client talks to one merlind server — or, with WithEndpoints, to a list of
// equivalent servers with client-side failover: a connection failure rotates
// to the next base URL before the retry, so one dead backend costs one
// attempt, not the whole budget. It is safe for concurrent use.
type Client struct {
	hc         *http.Client
	maxRetries int
	bo         *Backoff

	mu        sync.Mutex
	endpoints []string
	cur       int
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (default: a client
// with no global timeout — per-call contexts bound each request).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithMaxRetries sets how many times a retryable failure is retried
// (default 4; 0 disables retries).
func WithMaxRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// WithBackoff sets the base and ceiling of the exponential backoff
// (defaults 100ms and 5s). A server Retry-After hint overrides the computed
// backoff when it is longer.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.bo.Base, c.bo.Max = base, max }
}

// WithSeed makes the backoff jitter deterministic, for tests.
func WithSeed(seed int64) Option {
	return func(c *Client) { c.bo.Seed(seed) }
}

// WithEndpoints replaces the client's endpoint list with the given base
// URLs (the New baseURL plus these, deduplicated, in order). Requests go to
// the current endpoint; a connection failure rotates to the next one for
// the retry, so callers fail over across a ring of equivalent backends (or
// routers) without giving up their retry budget to one dead host. Rotation
// is sticky: once an endpoint works, subsequent requests keep using it.
func WithEndpoints(urls ...string) Option {
	return func(c *Client) {
		for _, u := range urls {
			u = strings.TrimRight(u, "/")
			if u == "" {
				continue
			}
			dup := false
			for _, have := range c.endpoints {
				if have == u {
					dup = true
					break
				}
			}
			if !dup {
				c.endpoints = append(c.endpoints, u)
			}
		}
	}
}

// New returns a client for the server at baseURL (e.g. "http://127.0.0.1:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		hc:         &http.Client{},
		maxRetries: 4,
		bo:         NewBackoff(0, 0, 0),
	}
	if base := strings.TrimRight(baseURL, "/"); base != "" {
		c.endpoints = []string{base}
	}
	for _, o := range opts {
		o(c)
	}
	if len(c.endpoints) == 0 {
		c.endpoints = []string{""}
	}
	return c
}

// Endpoints returns the configured base URLs in rotation order.
func (c *Client) Endpoints() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.endpoints...)
}

// base returns the current endpoint and its rotation cursor.
func (c *Client) baseURL() (string, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.endpoints[c.cur], c.cur
}

// rotate advances past the endpoint at cursor `from` unless a concurrent
// request already did — two requests failing on the same dead endpoint
// should skip it once, not twice.
func (c *Client) rotate(from int) {
	c.mu.Lock()
	if c.cur == from && len(c.endpoints) > 1 {
		c.cur = (c.cur + 1) % len(c.endpoints)
	}
	c.mu.Unlock()
}

// Route routes one net, retrying per the package policy.
func (c *Client) Route(ctx context.Context, req *service.RouteRequest) (*service.RouteResponse, error) {
	var out service.RouteResponse
	if err := c.postRetry(ctx, "/v1/route", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Batch routes many nets in one collected (non-streamed) call, retrying per
// the package policy. req.Stream is forced off; use BatchStream for NDJSON.
func (c *Client) Batch(ctx context.Context, req *service.BatchRequest) (*service.BatchResponse, error) {
	r := *req
	r.Stream = false
	var out service.BatchResponse
	if err := c.postRetry(ctx, "/v1/batch", &r, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// BatchStream routes many nets with streamed NDJSON results, calling fn for
// each item as it arrives. Obtaining the stream (connecting, 429/503
// rejections) is retried like any request, but once the first item has been
// consumed the request is no longer replayable from the client's side —
// fn has observed results — so a mid-stream failure returns an error and is
// never retried. fn returning an error stops the stream and returns that
// error.
func (c *Client) BatchStream(ctx context.Context, req *service.BatchRequest, fn func(service.BatchItem) error) error {
	r := *req
	r.Stream = true
	body, err := json.Marshal(&r)
	if err != nil {
		return fmt.Errorf("client: encode request: %w", err)
	}
	resp, err := c.doRetry(ctx, "/v1/batch", body, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	for {
		var item service.BatchItem
		if err := dec.Decode(&item); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("client: stream broken mid-batch (not retried): %w", err)
		}
		if err := fn(item); err != nil {
			return err
		}
	}
}

// Healthz probes /v1/healthz once (no retries): pure liveness — nil whenever
// the process is up and serving HTTP, even while draining. Use Readyz to ask
// whether it should receive new work.
func (c *Client) Healthz(ctx context.Context) error {
	resp, err := c.get(ctx, "/v1/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	return apiErrorFrom(resp)
}

// Readyz probes /v1/readyz once (no retries): nil when the server is ready
// for new work, an *APIError with status 503 when it is draining or its
// durability layer is unavailable. Routers eject backends on this signal,
// not on healthz — "restart me" and "stop routing to me" are different
// questions.
func (c *Client) Readyz(ctx context.Context) error {
	resp, err := c.get(ctx, "/v1/readyz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	return apiErrorFrom(resp)
}

// Stats fetches /v1/stats once (no retries).
func (c *Client) Stats(ctx context.Context) (*service.Stats, error) {
	resp, err := c.get(ctx, "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiErrorFrom(resp)
	}
	var out service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decode stats: %w", err)
	}
	return &out, nil
}

// postRetry sends a JSON POST with retries and decodes the 200 body into out.
func (c *Client) postRetry(ctx context.Context, path string, in, out any) error {
	return c.postRetryHeader(ctx, path, nil, in, out)
}

// postRetryHeader is postRetry with extra request headers (e.g.
// Idempotency-Key) applied to every attempt.
func (c *Client) postRetryHeader(ctx context.Context, path string, header http.Header, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: encode request: %w", err)
	}
	resp, err := c.doRetry(ctx, path, body, header)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

// doRetry POSTs body to path until it gets a 2xx, a non-retryable verdict,
// or the retry budget / context runs out. On a retryable failure it sleeps
// the exponential backoff with full jitter, or the server's Retry-After hint
// when that is longer. header (may be nil) is applied to every attempt.
func (c *Client) doRetry(ctx context.Context, path string, body []byte, header http.Header) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, c.abort(err, lastErr)
		}
		base, cur := c.baseURL()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if dl, ok := ctx.Deadline(); ok {
			// Propagate the caller's remaining patience so the server can
			// fold it into the request's wall budget: a solve the client has
			// already abandoned should stop burning a worker. Recomputed per
			// attempt — retries shrink what is left.
			if ms := time.Until(dl).Milliseconds(); ms > 0 {
				req.Header.Set(service.DeadlineHeader, strconv.FormatInt(ms, 10))
			}
		}
		for k, vs := range header {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		resp, err := c.hc.Do(req)
		var wait time.Duration
		rotated := false
		switch {
		case err != nil:
			// Transport failure before a verdict; the request is replayable.
			// With multiple endpoints this is the failover trigger: rotate to
			// the next base URL and try it immediately — sleeping a backoff
			// before a different, probably-healthy host only adds latency.
			lastErr = err
			c.rotate(cur)
			rotated = len(c.Endpoints()) > 1
		case resp.StatusCode/100 == 2:
			return resp, nil
		default:
			apiErr := apiErrorFrom(resp) // also drains and closes the body
			if !apiErr.Retryable() {
				return nil, apiErr
			}
			lastErr = apiErr
			wait = apiErr.RetryAfter
			// A 503 (draining/overloaded) is a verdict about this host, not
			// the ring: rotate, but keep the backoff sleep — its siblings
			// are likely feeling the same load.
			if apiErr.Status == http.StatusServiceUnavailable {
				c.rotate(cur)
			}
		}
		if attempt >= c.maxRetries {
			return nil, fmt.Errorf("client: giving up after %d attempts: %w", attempt+1, lastErr)
		}
		if rotated {
			continue
		}
		if err := c.sleep(ctx, c.bo.Delay(attempt, wait)); err != nil {
			return nil, c.abort(err, lastErr)
		}
	}
}

// abort wraps a context error with the last server-side failure, so "context
// deadline exceeded" still tells the caller what it was waiting out.
func (c *Client) abort(ctxErr, lastErr error) error {
	if lastErr == nil {
		return ctxErr
	}
	return fmt.Errorf("client: %w (last failure: %v)", ctxErr, lastErr)
}

// backoff delegates to the shared Backoff policy (see backoff.go).
func (c *Client) backoff(attempt int, hint time.Duration) time.Duration {
	return c.bo.Delay(attempt, hint)
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	base, cur := c.baseURL()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Probes don't retry, but a dead endpoint should still not pin the
		// cursor: rotate so the caller's next call tries a live sibling.
		c.rotate(cur)
	}
	return resp, err
}

// apiErrorFrom builds an *APIError from a non-2xx response, consuming and
// closing the body. Bodies that are not the service's JSON error shape
// (proxies, panics mid-encode) degrade to the raw text.
func apiErrorFrom(resp *http.Response) *APIError {
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	e := &APIError{Status: resp.StatusCode}
	var body service.ErrorBody
	if err := json.Unmarshal(raw, &body); err == nil && body.Error != "" {
		e.Code, e.Message = body.Code, body.Error
	} else {
		e.Message = strings.TrimSpace(string(raw))
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if sec, err := strconv.Atoi(ra); err == nil && sec >= 0 {
			e.RetryAfter = time.Duration(sec) * time.Second
		} else if t, err := http.ParseTime(ra); err == nil {
			if d := time.Until(t); d > 0 {
				e.RetryAfter = d
			}
		}
	}
	return e
}
