package client

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"merlin/internal/service"
)

// SubmitJob submits one asynchronous routing job (POST /v1/jobs) and returns
// the server's acknowledgment. With an empty idemKey the client generates a
// fresh idempotency key, so its own transport-level retries can never
// double-run the job; pass an explicit key to deduplicate across processes.
// The key in effect is echoed in the returned status. A 409 (the key was
// reused with a different request body) is returned immediately, never
// retried — see APIError.Retryable.
func (c *Client) SubmitJob(ctx context.Context, req *service.RouteRequest, idemKey string) (*service.JobStatus, error) {
	if idemKey == "" {
		var err error
		if idemKey, err = newIdemKey(); err != nil {
			return nil, err
		}
	}
	h := http.Header{"Idempotency-Key": []string{idemKey}}
	var out service.JobStatus
	if err := c.postRetryHeader(ctx, "/v1/jobs", h, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobStatus fetches one job's current state (GET /v1/jobs/{id}) once, no
// retries: like the other probes, it observes the server's state right now.
func (c *Client) JobStatus(ctx context.Context, id string) (*service.JobStatus, error) {
	resp, err := c.get(ctx, "/v1/jobs/"+id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiErrorFrom(resp)
	}
	var out service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decode job status: %w", err)
	}
	return &out, nil
}

// WaitJob polls a job until it reaches a terminal state (done, failed or
// degraded) and returns that final status — including for failed jobs, whose
// Error/Code fields carry the verdict; WaitJob itself errors only when
// polling breaks (unknown ID, transport failure, ctx done). Polls are spaced
// by the client's exponential backoff, capped at the backoff ceiling, and a
// server Retry-After hint on a transient poll failure is honored.
func (c *Client) WaitJob(ctx context.Context, id string) (*service.JobStatus, error) {
	transient := 0
	for attempt := 0; ; attempt++ {
		st, err := c.JobStatus(ctx, id)
		switch {
		case err == nil:
			transient = 0
			if service.JobState(st.State).Terminal() {
				return st, nil
			}
		default:
			apiErr, ok := err.(*APIError)
			if !ok || !apiErr.Retryable() {
				return nil, err
			}
			// A draining or overloaded server still owns the job; keep
			// polling until the retry budget says otherwise.
			if transient++; transient > c.maxRetries {
				return nil, fmt.Errorf("client: giving up polling job %s: %w", id, err)
			}
			if apiErr.RetryAfter > 0 {
				if serr := c.sleep(ctx, apiErr.RetryAfter); serr != nil {
					return nil, c.abort(serr, err)
				}
				continue
			}
		}
		d := c.backoff(attempt, 0)
		if d < minPollInterval {
			d = minPollInterval // a zero-backoff client must not busy-poll
		}
		if serr := c.sleep(ctx, d); serr != nil {
			return nil, c.abort(serr, err)
		}
	}
}

// minPollInterval floors WaitJob's poll spacing, whatever backoff the client
// was configured with.
const minPollInterval = 10 * time.Millisecond

// RouteAsync is SubmitJob + WaitJob: durable at-least-once submission with
// synchronous ergonomics. A failed job comes back as an *APIError carrying
// the job's code, mirroring what the synchronous Route would have returned.
func (c *Client) RouteAsync(ctx context.Context, req *service.RouteRequest) (*service.RouteResponse, error) {
	st, err := c.SubmitJob(ctx, req, "")
	if err != nil {
		return nil, err
	}
	if st, err = c.WaitJob(ctx, st.ID); err != nil {
		return nil, err
	}
	if service.JobState(st.State) == service.JobFailed {
		return nil, &APIError{Status: http.StatusUnprocessableEntity, Code: st.Code, Message: st.Error}
	}
	return st.Result, nil
}

// newIdemKey mints a collision-resistant idempotency key.
func newIdemKey() (string, error) {
	var b [16]byte
	if _, err := crand.Read(b[:]); err != nil {
		return "", fmt.Errorf("client: idempotency key: %w", err)
	}
	return "idem-" + hex.EncodeToString(b[:]), nil
}
