package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"merlin/internal/trace"
)

// Trace fetches one retained trace by the id a RouteResponse carried in its
// trace_id field. Like Stats, it runs once with no retries: traces are
// best-effort observability data held in a bounded ring, and an id that has
// been evicted or sampled out answers 404 (*APIError, code trace_not_found)
// no matter how often it is asked — retrying cannot bring it back.
func (c *Client) Trace(ctx context.Context, id string) (*trace.TraceJSON, error) {
	resp, err := c.get(ctx, "/v1/trace/"+id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiErrorFrom(resp)
	}
	var out trace.TraceJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decode trace: %w", err)
	}
	return &out, nil
}
