package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"merlin/internal/trace"
)

// TestTraceFetch: a retained id decodes into the OTLP-shaped snapshot; an
// evicted id is a single 404 with code trace_not_found — no retries, because
// a ring eviction is permanent.
func TestTraceFetch(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		if r.URL.Path != "/v1/trace/abc123" {
			errJSON(w, http.StatusNotFound, "trace_not_found")
			return
		}
		json.NewEncoder(w).Encode(trace.TraceJSON{
			TraceID:    "abc123",
			Name:       "route",
			DurationMS: 12.5,
			Spans: []trace.SpanJSON{
				{TraceID: "abc123", SpanID: "0000000000000001", Name: "route"},
				{TraceID: "abc123", SpanID: "0000000000000002", ParentID: "0000000000000001", Name: "queue.wait"},
			},
		})
	}))
	defer ts.Close()

	cl := fastClient(ts.URL, 5)
	snap, err := cl.Trace(context.Background(), "abc123")
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	if snap.TraceID != "abc123" || len(snap.Spans) != 2 || snap.Spans[1].ParentID != snap.Spans[0].SpanID {
		t.Errorf("decoded snapshot off: %+v", snap)
	}

	attempts.Store(0)
	_, err = cl.Trace(context.Background(), "gone")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || apiErr.Code != "trace_not_found" {
		t.Fatalf("evicted trace: err = %v, want 404 trace_not_found", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("404 trace fetched %d times, want 1 (no retries)", got)
	}
}
