package client

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"merlin/internal/service"
)

// deadEndpoint reserves a port, closes it, and returns a base URL that will
// refuse connections for the test's lifetime (nothing re-listens).
func deadEndpoint(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return "http://" + addr
}

func TestEndpointFailoverOnConnectionError(t *testing.T) {
	var calls atomic.Int32
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		json.NewEncoder(w).Encode(service.RouteResponse{Net: "ok"})
	}))
	defer live.Close()

	c := New(deadEndpoint(t),
		WithEndpoints(live.URL),
		WithMaxRetries(2),
		WithBackoff(time.Millisecond, 4*time.Millisecond),
		WithSeed(1))
	resp, err := c.Route(context.Background(), &service.RouteRequest{})
	if err != nil {
		t.Fatalf("failover route: %v", err)
	}
	if resp.Net != "ok" {
		t.Fatalf("resp.Net = %q", resp.Net)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("live endpoint saw %d calls, want 1", got)
	}

	// Rotation is sticky: the next request goes straight to the live host.
	if _, err := c.Route(context.Background(), &service.RouteRequest{}); err != nil {
		t.Fatalf("second route: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("live endpoint saw %d calls after second route, want 2", got)
	}
}

func TestEndpointRotationOn503(t *testing.T) {
	var drainCalls, liveCalls atomic.Int32
	draining := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		drainCalls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(service.ErrorBody{Error: "draining", Code: "shutting_down"})
	}))
	defer draining.Close()
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		liveCalls.Add(1)
		json.NewEncoder(w).Encode(service.RouteResponse{Net: "ok"})
	}))
	defer live.Close()

	c := New(draining.URL,
		WithEndpoints(live.URL),
		WithMaxRetries(2),
		WithBackoff(time.Millisecond, 4*time.Millisecond),
		WithSeed(1))
	if _, err := c.Route(context.Background(), &service.RouteRequest{}); err != nil {
		t.Fatalf("route past draining host: %v", err)
	}
	if got := drainCalls.Load(); got != 1 {
		t.Fatalf("draining endpoint saw %d calls, want 1", got)
	}
	if got := liveCalls.Load(); got != 1 {
		t.Fatalf("live endpoint saw %d calls, want 1", got)
	}
}

func TestEndpointsAllDeadGivesUp(t *testing.T) {
	c := New(deadEndpoint(t),
		WithEndpoints(deadEndpoint(t)),
		WithMaxRetries(3),
		WithBackoff(time.Millisecond, 2*time.Millisecond),
		WithSeed(1))
	if _, err := c.Route(context.Background(), &service.RouteRequest{}); err == nil {
		t.Fatal("want error when every endpoint refuses connections")
	}
}

func TestEndpointsDeduplicated(t *testing.T) {
	c := New("http://a:1/",
		WithEndpoints("http://a:1", "http://b:2", "http://b:2/"))
	eps := c.Endpoints()
	if len(eps) != 2 || eps[0] != "http://a:1" || eps[1] != "http://b:2" {
		t.Fatalf("endpoints = %v, want [http://a:1 http://b:2]", eps)
	}
}

func TestBackoffDelayGrowsAndCaps(t *testing.T) {
	b := NewBackoff(100*time.Millisecond, time.Second, 7)
	for attempt, wantMax := range []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second, time.Second,
	} {
		d := b.Delay(attempt, 0)
		if d < wantMax/2 || d > wantMax {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, wantMax/2, wantMax)
		}
	}
	// A longer server hint wins.
	if d := b.Delay(0, 3*time.Second); d != 3*time.Second {
		t.Fatalf("hinted delay = %v, want 3s", d)
	}
	// Overflow-proof: an absurd attempt number still caps at Max.
	if d := b.Delay(500, 0); d > time.Second {
		t.Fatalf("attempt 500 delay = %v, want <= 1s", d)
	}
}
