package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"merlin/internal/service"
)

// fastClient returns a client with near-zero backoff so retry tests run in
// milliseconds.
func fastClient(url string, retries int) *Client {
	return New(url,
		WithMaxRetries(retries),
		WithBackoff(time.Millisecond, 4*time.Millisecond),
		WithSeed(1))
}

func errJSON(w http.ResponseWriter, status int, code string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(service.ErrorBody{Error: "synthetic " + code, Code: code})
}

func TestRetriesUntilSuccess(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			errJSON(w, http.StatusTooManyRequests, "queue_full")
			return
		}
		json.NewEncoder(w).Encode(service.RouteResponse{Net: "ok"})
	}))
	defer ts.Close()

	resp, err := fastClient(ts.URL, 4).Route(context.Background(), &service.RouteRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Net != "ok" {
		t.Fatalf("resp.Net = %q", resp.Net)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (two 429s then success)", got)
	}
}

func TestNoRetryOnVerdictStatuses(t *testing.T) {
	for _, tc := range []struct {
		status int
		code   string
	}{
		{http.StatusBadRequest, "bad_request"},
		{http.StatusRequestEntityTooLarge, "payload_too_large"},
		{http.StatusUnprocessableEntity, "budget_exceeded"},
		{http.StatusInternalServerError, "internal"},
		{http.StatusGatewayTimeout, "timeout"},
	} {
		t.Run(tc.code, func(t *testing.T) {
			var calls atomic.Int32
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				calls.Add(1)
				errJSON(w, tc.status, tc.code)
			}))
			defer ts.Close()

			_, err := fastClient(ts.URL, 4).Route(context.Background(), &service.RouteRequest{})
			var apiErr *APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("want *APIError, got %v", err)
			}
			if apiErr.Status != tc.status || apiErr.Code != tc.code {
				t.Fatalf("got %d %q, want %d %q", apiErr.Status, apiErr.Code, tc.status, tc.code)
			}
			if got := calls.Load(); got != 1 {
				t.Fatalf("verdict status retried: server saw %d calls", got)
			}
		})
	}
}

func TestGivesUpAfterMaxRetries(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		errJSON(w, http.StatusServiceUnavailable, "shutting_down")
	}))
	defer ts.Close()

	_, err := fastClient(ts.URL, 2).Route(context.Background(), &service.RouteRequest{})
	if err == nil {
		t.Fatal("want error after retries exhausted")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("give-up error does not unwrap to the last 503: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (initial + 2 retries)", got)
	}
}

func TestHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	var gap atomic.Int64
	var last atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 {
			gap.Store(now - prev)
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			errJSON(w, http.StatusTooManyRequests, "queue_full")
			return
		}
		json.NewEncoder(w).Encode(service.RouteResponse{Net: "ok"})
	}))
	defer ts.Close()

	// Backoff alone would wait ~1ms; the server's hint demands 1s. The
	// observed gap proves which one won.
	start := time.Now()
	if _, err := fastClient(ts.URL, 2).Route(context.Background(), &service.RouteRequest{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("client waited %v, Retry-After demanded >= 1s", elapsed)
	}
	if g := time.Duration(gap.Load()); g < 900*time.Millisecond {
		t.Fatalf("gap between attempts %v, want >= ~1s", g)
	}
}

func TestContextCancelsBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		errJSON(w, http.StatusTooManyRequests, "queue_full")
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := fastClient(ts.URL, 4).Route(ctx, &service.RouteRequest{})
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded in chain, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("client slept %v through a canceled context", elapsed)
	}
}

func TestBatchStreamNoMidStreamRetry(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		json.NewEncoder(w).Encode(service.BatchItem{Index: 0})
		w.(http.Flusher).Flush()
		// Sever the connection mid-stream: the client must surface an error
		// without re-POSTing the batch.
		conn, _, _ := w.(http.Hijacker).Hijack()
		conn.Close()
	}))
	defer ts.Close()

	var got []service.BatchItem
	err := fastClient(ts.URL, 4).BatchStream(context.Background(), &service.BatchRequest{},
		func(item service.BatchItem) error {
			got = append(got, item)
			return nil
		})
	if err == nil {
		t.Fatal("want mid-stream error")
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d items before the break, want 1", len(got))
	}
	if calls.Load() != 1 {
		t.Fatalf("mid-stream failure was retried: server saw %d calls", calls.Load())
	}
}

func TestBatchStreamRetriesBeforeFirstByte(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			errJSON(w, http.StatusTooManyRequests, "queue_full")
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		json.NewEncoder(w).Encode(service.BatchItem{Index: 0})
	}))
	defer ts.Close()

	var n int
	err := fastClient(ts.URL, 4).BatchStream(context.Background(), &service.BatchRequest{},
		func(service.BatchItem) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || calls.Load() != 2 {
		t.Fatalf("items %d calls %d, want 1 item after one pre-stream retry", n, calls.Load())
	}
}

func TestHealthzDoesNotRetry(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		errJSON(w, http.StatusServiceUnavailable, "shutting_down")
	}))
	defer ts.Close()

	err := fastClient(ts.URL, 4).Healthz(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("want 503 APIError, got %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("healthz retried: %d calls", calls.Load())
	}
}

func TestAPIErrorFromNonJSONBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bare proxy text", http.StatusBadGateway)
	}))
	defer ts.Close()

	_, err := fastClient(ts.URL, 0).Route(context.Background(), &service.RouteRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.Status != http.StatusBadGateway || apiErr.Message != "bare proxy text" {
		t.Fatalf("got %d %q", apiErr.Status, apiErr.Message)
	}
	if apiErr.Code != "" {
		t.Fatalf("invented a code for a non-JSON body: %q", apiErr.Code)
	}
}

func TestRetriesTransportErrors(t *testing.T) {
	// A server that is down for the first attempts: bind a listener, close
	// it, and point the client at the dead address — every attempt is a
	// transport error, so the client must try maxRetries+1 times then give up.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close()

	start := time.Now()
	_, err := fastClient(url, 3).Route(context.Background(), &service.RouteRequest{})
	if err == nil {
		t.Fatal("want transport failure")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("gave up after %v, backoff misconfigured", elapsed)
	}
}

// TestDeadlineHeaderPropagated: a context deadline is forwarded to the
// server as X-Merlin-Deadline-Ms, recomputed per attempt so retries carry
// the shrinking remainder, and omitted when the context has no deadline.
func TestDeadlineHeaderPropagated(t *testing.T) {
	var calls atomic.Int32
	var headers [2]string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n <= 2 {
			headers[n-1] = r.Header.Get(service.DeadlineHeader)
		}
		if n == 1 {
			errJSON(w, http.StatusTooManyRequests, "queue_full")
			return
		}
		json.NewEncoder(w).Encode(service.RouteResponse{Net: "ok"})
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := fastClient(ts.URL, 4).Route(ctx, &service.RouteRequest{}); err != nil {
		t.Fatal(err)
	}
	var ms [2]int64
	for i, h := range headers {
		v, err := strconv.ParseInt(h, 10, 64)
		if err != nil || v <= 0 {
			t.Fatalf("attempt %d: deadline header %q, want positive integer ms", i+1, h)
		}
		ms[i] = v
	}
	if ms[1] > ms[0] {
		t.Fatalf("retry advertised more time than the first attempt: %d then %d ms", ms[0], ms[1])
	}

	// No deadline on the context — no header on the wire.
	calls.Store(0)
	headers = [2]string{"unset", "unset"}
	if _, err := fastClient(ts.URL, 0).Route(context.Background(), &service.RouteRequest{}); err == nil {
		_ = err // single 429 without retries errors; either way the header was recorded
	}
	if headers[0] != "" {
		t.Fatalf("deadline header sent without a context deadline: %q", headers[0])
	}
}
