// Quickstart: build a small net by hand, run MERLIN, and inspect the
// resulting hierarchical buffered routing tree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"merlin/internal/buflib"
	"merlin/internal/core"
	"merlin/internal/geom"
	"merlin/internal/net"
	"merlin/internal/rc"
)

func main() {
	// Technology and buffer library (synthetic 0.35µ-class, 34 buffers).
	tech := rc.Default035()
	lib := buflib.Default035()

	// A net: one driver at the origin, five sinks with loads (pF) and
	// required times (ns). Distances are in λ.
	nt := &net.Net{
		Name:   "quickstart",
		Source: geom.Point{X: 0, Y: 0},
		Driver: lib.Driver,
		Sinks: []net.Sink{
			{Pos: geom.Point{X: 12000, Y: 2000}, Load: 0.020, Req: 5.0},
			{Pos: geom.Point{X: 15000, Y: 9000}, Load: 0.035, Req: 5.2},
			{Pos: geom.Point{X: 3000, Y: 14000}, Load: 0.012, Req: 4.8},
			{Pos: geom.Point{X: 9000, Y: 16000}, Load: 0.050, Req: 5.5},
			{Pos: geom.Point{X: 1000, Y: 7000}, Load: 0.008, Req: 4.6},
		},
	}

	// Candidate buffer locations: the Hanan grid of the terminals (§III.1
	// offers Hanan points, reserved locations, or centers of mass — any
	// sufficiently dense set works).
	cands := geom.ReducedHanan(nt.Terminals(), 20)

	// Run MERLIN: local neighborhood search over sink orders, each
	// neighborhood searched optimally by BUBBLE_CONSTRUCT.
	opts := core.DefaultOptions()
	opts.Alpha = 6
	res, err := core.Merlin(nt, cands, lib, tech, opts, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged in %d loop(s); final sink order %v\n", res.Loops, res.FinalOrder)
	fmt.Printf("required time at driver input: %.4f ns\n", res.ReqAtDriverInput)
	fmt.Printf("total buffer area: %.0f λ²\n", res.Solution.Area)
	fmt.Println("\nbuffered routing tree:")
	fmt.Print(res.Tree)

	// The final curve is the 3-D non-inferior frontier (Fig. 8): every
	// (load, required time, buffer area) trade-off the DP retained.
	fmt.Println("non-inferior frontier at the source:")
	for _, s := range res.Frontier.Sols {
		fmt.Printf("  %v\n", s)
	}

	// Full evaluation with slew propagation.
	ev := res.Tree.Evaluate(tech, lib.Driver)
	fmt.Printf("\nevaluated: delay=%.4f ns, wirelength=%d λ, %d buffers\n",
		ev.Delay, ev.Wirelength, res.Tree.NumBuffers())
}
