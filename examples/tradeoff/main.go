// Tradeoff: the two problem variants of §III.1 on one net.
//
// Variant I — maximize required time subject to a buffer-area budget — is
// swept over budgets; variant II — minimize area subject to a required-time
// floor — is swept over floors. Both read off the same 3-D non-inferior
// solution curve (Fig. 8), which is also printed.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"merlin/internal/buflib"
	"merlin/internal/core"
	"merlin/internal/geom"
	"merlin/internal/net"
	"merlin/internal/rc"
)

func main() {
	tech := rc.Default035()
	lib := buflib.Default035().Small(12)
	nt := net.Generate(net.DefaultGenSpec(9, 7), tech, lib.Driver)
	cands := geom.ReducedHanan(nt.Terminals(), 16)

	opts := core.DefaultOptions()
	opts.Alpha = 6
	opts.MaxSols = 12
	res, err := core.Merlin(nt, cands, lib, tech, opts, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("net %s (n=%d), %d loops\n\n", nt.Name, nt.N(), res.Loops)
	fmt.Println("3-D non-inferior solution curve at the source (Fig. 8):")
	fmt.Printf("  %-12s %-12s %-12s\n", "load (pF)", "req (ns)", "buf area (λ²)")
	for _, s := range res.Frontier.Sols {
		fmt.Printf("  %-12.4f %-12.4f %-12.0f\n", s.Load, s.Req, s.Area)
	}

	en := core.NewEngine(nt, cands, lib, tech, opts)
	final, err := en.Construct(res.FinalOrder)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nVariant I: max required time s.t. area budget")
	fmt.Printf("  %-14s %-12s %-12s\n", "budget (λ²)", "req (ns)", "area used")
	for _, budget := range []float64{2000, 5000, 10000, 20000, 50000, 1e9} {
		sol, reqAt, err := en.Extract(final, core.Goal{Mode: core.GoalMaxReq, AreaBudget: budget})
		if err != nil {
			fmt.Printf("  %-14.0f (no feasible solution)\n", budget)
			continue
		}
		fmt.Printf("  %-14.0f %-12.4f %-12.0f\n", budget, reqAt, sol.Area)
	}

	fmt.Println("\nVariant II: min area s.t. required-time floor")
	fmt.Printf("  %-14s %-12s %-12s\n", "floor (ns)", "req (ns)", "area (λ²)")
	bestSol, bestReq, err := en.Extract(final, core.Goal{Mode: core.GoalMaxReq})
	if err != nil {
		log.Fatal(err)
	}
	_ = bestSol
	for _, frac := range []float64{0.5, 0.8, 0.9, 0.95, 1.0} {
		floor := bestReq * frac
		sol, reqAt, err := en.Extract(final, core.Goal{Mode: core.GoalMinArea, ReqFloor: floor})
		if err != nil {
			fmt.Printf("  %-14.4f (no feasible solution)\n", floor)
			continue
		}
		fmt.Printf("  %-14.4f %-12.4f %-12.0f\n", floor, reqAt, sol.Area)
	}
}
