// Fanoutopt: the logic-domain ancestry of the Cα_Tree.
//
// LT-Trees type-I [To90] solve fanout optimization (no positions, no wires)
// with a buffer-chain DP; Definition 2's Cα_Tree generalizes them (Lemma 3).
// This example runs the LTTREE baseline on a fanout problem, prints the
// chosen chain, and then shows what MERLIN does with the *same* sinks once
// positions exist — the unified formulation's whole point.
//
//	go run ./examples/fanoutopt
package main

import (
	"fmt"
	"log"

	"merlin/internal/buflib"
	"merlin/internal/core"
	"merlin/internal/flows"
	"merlin/internal/geom"
	"merlin/internal/lttree"
	"merlin/internal/net"
	"merlin/internal/rc"
)

func main() {
	tech := rc.Default035()
	lib := buflib.Default035()
	nt := net.Generate(net.DefaultGenSpec(12, 3), tech, lib.Driver)

	// Logic domain: LT-Tree fanout optimization with a wire-load model.
	opts := lttree.DefaultOptions()
	box := geom.BoundingBox(nt.Terminals())
	opts.WireLoadPerSink = tech.WireC((box.Width() + box.Height()) / 3)
	ch, err := lttree.Build(nt, lib, tech, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LT-Tree chain curve for %s (n=%d): %d non-inferior chains\n",
		nt.Name, nt.N(), ch.Curve.Len())
	for _, s := range ch.Curve.Sols {
		fmt.Printf("  load=%.3fpF req=%.3fns bufarea=%.0fλ²\n", s.Load, s.Req, s.Area)
	}

	// Embed it: buffers at cluster centers of mass, PTREE per level.
	t1, err := lttree.PlaceAndRoute(ch, lib, tech, opts, 12)
	if err != nil {
		log.Fatal(err)
	}
	if err := t1.IsLTTreeI(); err != nil {
		log.Fatalf("embedded chain is not an LT-Tree type-I: %v", err)
	}
	ev1 := t1.Evaluate(tech, lib.Driver)
	fmt.Printf("\nFlow I (LTTREE+PTREE): delay=%.4fns bufarea=%.0fλ² chain depth=%d\n",
		ev1.Delay, ev1.BufferArea, t1.BufferChainLength())

	// Physical domain: MERLIN on the same net.
	prof := flows.ProfileFor(nt.N())
	res, err := core.Merlin(nt, geom.ReducedHanan(nt.Terminals(), prof.MaxCands),
		prof.Lib, prof.Tech, prof.Core, nil)
	if err != nil {
		log.Fatal(err)
	}
	ev3 := res.Tree.Evaluate(tech, prof.Lib.Driver)
	fmt.Printf("Flow III (MERLIN):     delay=%.4fns bufarea=%.0fλ² loops=%d\n",
		ev3.Delay, ev3.BufferArea, res.Loops)
	fmt.Printf("\ndelay ratio III/I = %.2f at buffer-area ratio %.2f\n",
		ev3.Delay/ev1.Delay, ev3.BufferArea/ev1.BufferArea)
	fmt.Println("(the sequential flow can win a single net by outspending on buffers;")
	fmt.Println(" Table 1 aggregates the comparison across nets — see cmd/table1)")
}
