// Convergence: experiment E4 — MERLIN's outer local search "converges very
// quickly for most practical examples" (§I; the Loops column of Table 1 runs
// 1–12). This example runs MERLIN on a batch of random nets and prints the
// loop-count histogram plus the improvement each extra loop bought.
//
//	go run ./examples/convergence [-nets 30] [-sinks 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"merlin/internal/core"
	"merlin/internal/flows"
	"merlin/internal/geom"
	"merlin/internal/net"
)

func main() {
	nets := flag.Int("nets", 10, "number of random nets")
	sinks := flag.Int("sinks", 7, "sinks per net")
	flag.Parse()

	prof := flows.ProfileFor(*sinks)
	hist := map[int]int{}
	var firstReq, finalReq float64
	maxLoops := 0

	for i := 0; i < *nets; i++ {
		nt := net.Generate(net.DefaultGenSpec(*sinks, int64(1000+i)), prof.Tech, prof.Lib.Driver)
		cands := geom.ReducedHanan(nt.Terminals(), prof.MaxCands)

		// One-shot BUBBLE_CONSTRUCT for the "loop 1" quality...
		_, sol1, err := core.BubbleConstructOnce(nt, cands, prof.Lib, prof.Tech, prof.Core, nil)
		if err == nil {
			firstReq += sol1.Req
		}

		// ...and the full MERLIN search.
		res, err := core.Merlin(nt, cands, prof.Lib, prof.Tech, prof.Core, nil)
		if err != nil {
			log.Fatal(err)
		}
		hist[res.Loops]++
		finalReq += res.Solution.Req
		if res.Loops > maxLoops {
			maxLoops = res.Loops
		}
	}

	fmt.Printf("MERLIN loop counts over %d random %d-sink nets:\n", *nets, *sinks)
	for l := 1; l <= maxLoops; l++ {
		fmt.Printf("  %2d loop(s): %3d  %s\n", l, hist[l], strings.Repeat("#", hist[l]))
	}
	fmt.Printf("\nmean required time after loop 1: %.4f ns\n", firstReq/float64(*nets))
	fmt.Printf("mean required time at fixpoint:  %.4f ns\n", finalReq/float64(*nets))
	fmt.Println("\n(paper Table 1: loops ranged 1–12, most nets ≤ 5)")
}
