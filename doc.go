// Package merlin is a from-scratch Go reproduction of
//
//	A. H. Salek, J. Lou, M. Pedram,
//	"MERLIN: Semi-Order-Independent Hierarchical Buffered Routing Tree
//	Generation Using Local Neighborhood Search", DAC 1999,
//
// including the paper's contribution (grouping structures χ0–χ3 with local
// order-perturbation, the *PTREE buffered routing engine, BUBBLE_CONSTRUCT,
// and the MERLIN outer search) and every substrate and baseline its
// evaluation depends on: rectilinear geometry and Hanan grids, Elmore/
// 4-parameter delay models, a 34-buffer library, 3-D non-inferior solution
// curves, P-Tree routing [LCLH96], LT-Tree fanout optimization [To90], van
// Ginneken buffer insertion [Gi90], and a synthetic-netlist + placement +
// static-timing full flow for the post-layout experiments.
//
// The implementation lives under internal/; see README.md for the package
// map, DESIGN.md for the reproduction plan, and EXPERIMENTS.md for measured
// results against the paper's Tables 1 and 2. The benchmarks in
// bench_test.go regenerate every table and quantitative claim.
package merlin

// Version identifies this reproduction.
const Version = "1.0.0"
